//! B14 — observability overhead: the instrumented publish / inference
//! / macro-burst workloads with recording disabled (the production
//! default: one relaxed load per site) and enabled (striped atomic
//! recording). The committed medians live in `BENCH_onion.json`'s
//! `b14_observability` section via `experiments --json`.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_bench::observability::{
    count_burst, infer_chain, B14Fixture, B14_BURST, B14_CHAIN, B14_PUBLISH_ROUNDS,
};
use onion_core::obs;

fn bench(c: &mut Criterion) {
    let was_enabled = obs::enabled();
    let mut group = c.benchmark_group("b14_observability");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let mut fixture = B14Fixture::new();
    for enabled in [false, true] {
        obs::set_enabled(enabled);
        let suffix = if enabled { "enabled" } else { "disabled" };
        group.bench_function(format!("publish_{suffix}"), |b| {
            b.iter(|| fixture.publish_rounds(B14_PUBLISH_ROUNDS))
        });
        group.bench_function(format!("infer_{suffix}"), |b| {
            b.iter(|| std::hint::black_box(infer_chain(B14_CHAIN)))
        });
        group
            .bench_function(format!("count_burst_{suffix}"), |b| b.iter(|| count_burst(B14_BURST)));
    }
    obs::set_enabled(was_enabled);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
