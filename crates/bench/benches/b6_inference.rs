//! B6 — the §4.1 claim that restricting to Horn clauses admits "a much
//! lighter (and faster) inference engine": semi-naive vs naive vs the
//! unindexed full-closure baseline on transitive-closure workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onion_core::rules::atoms::AtomTable;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::{FactBase, InferenceEngine, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chain_facts(n: usize) -> (AtomTable, FactBase) {
    let mut atoms = AtomTable::new();
    let mut fb = FactBase::new();
    for i in 0..n {
        fb.add(&mut atoms, "si", &[&format!("t{i}"), &format!("t{}", i + 1)]);
    }
    (atoms, fb)
}

/// A random attachment forest: node i implies a uniformly random
/// earlier node. Closure size is only `O(n log n)` (sum of depths), so
/// this is the workload that scales to the 10k tier.
fn tree_facts(n: usize, seed: u64) -> (AtomTable, FactBase) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atoms = AtomTable::new();
    let mut fb = FactBase::new();
    for i in 1..n {
        let p = rng.gen_range(0..i);
        fb.add(&mut atoms, "si", &[&format!("t{i}"), &format!("t{p}")]);
    }
    (atoms, fb)
}

fn random_facts(n: usize, seed: u64) -> (AtomTable, FactBase) {
    // sparse random implication graph: n nodes, 2n edges
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atoms = AtomTable::new();
    let mut fb = FactBase::new();
    for _ in 0..2 * n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        fb.add(&mut atoms, "si", &[&format!("t{a}"), &format!("t{b}")]);
    }
    (atoms, fb)
}

fn program() -> HornProgram {
    HornProgram::parse("si(X, Z) :- si(X, Y), si(Y, Z).").unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_inference");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // chains stress depth; random graphs stress breadth
    type MakeFacts = fn(usize) -> (AtomTable, FactBase);
    let workloads: [(&str, MakeFacts); 2] =
        [("chain", chain_facts), ("random", |n| random_facts(n, 7))];
    for &n in &[32usize, 64] {
        for (workload, make) in workloads {
            for strat in [Strategy::SemiNaive, Strategy::Naive, Strategy::FullClosure] {
                let id = format!("{workload}/{strat:?}");
                group.bench_with_input(BenchmarkId::new(id, n), &n, |b, &n| {
                    b.iter(|| {
                        let (mut atoms, mut fb) = make(n);
                        InferenceEngine::new(program())
                            .with_strategy(strat)
                            .run(&mut atoms, &mut fb)
                            .unwrap()
                    })
                });
            }
        }
    }
    // the 10k-node tier: semi-naive only — the naive/full-closure
    // baselines are quadratic-plus in closure size and would not finish
    for &n in &[10_000usize] {
        group.bench_with_input(BenchmarkId::new("tree/SemiNaive", n), &n, |b, &n| {
            b.iter(|| {
                let (mut atoms, mut fb) = tree_facts(n, 11);
                InferenceEngine::new(program())
                    .with_strategy(Strategy::SemiNaive)
                    .run(&mut atoms, &mut fb)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
