//! Prints the full experiment tables recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p onion-bench --release --bin experiments
//! cargo run -p onion-bench --release --bin experiments -- --json [PATH]
//! cargo run -p onion-bench --release --bin experiments -- --metrics
//! ```
//!
//! Each section regenerates one DESIGN.md experiment (E1–E2, B1–B8) and
//! prints the series in "who wins, by what factor, where is the
//! crossover" form. Wall times are medians of several in-process
//! repetitions — indicative shapes, not Criterion-grade statistics (use
//! `cargo bench` for those).
//!
//! With `--json` the binary instead runs the machine-readable baseline
//! suite — the graph hot-path set on the testkit 10k-node / 50k-edge
//! tier (each series repeated ≥5× with the min/max spread recorded),
//! the B1/B4 end-to-end medians, the B10 parallel-throughput matrix
//! (1/2/4/available-parallelism threads, with byte-identical results
//! asserted against the sequential path), and the B11
//! incremental-publish curve (publish latency vs dirty-shard fraction,
//! with exact rebuild accounting asserted) — and writes it to `PATH`
//! (default `BENCH_onion.json`); this is the smoke step CI runs on
//! every push. An optional `--compare BASE` reads a previously
//! committed baseline and applies the two-tier regression gate: >2×
//! prints a `::warning::`, >3× prints an `::error::` and **fails the
//! run** (exit 1). The thresholds carry a variance margin: the
//! recorded per-series spreads (slowest/fastest repetition) sit well
//! under 2× on an idle host, so a 3× median regression is signal, not
//! noise — see the committed `spread` fields for the measured margin.
//!
//! `--metrics` (composable with either mode) turns `onion-obs`
//! recording on before the run and dumps the Prometheus text export of
//! the global registry after it — the quickest way to see what the
//! instrumented layers observed during a full experiment sweep.

use onion_bench::{articulated, instance_kbs, median_micros, pair, truth_rules};
use onion_core::algebra::compose::{add_source, compose_all};
use onion_core::articulate::maintain::{apply_delta, rebuild, triage};
use onion_core::prelude::*;
use onion_core::rules::atoms::AtomTable;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::{FactBase, InferenceEngine, Strategy};
use onion_core::testkit::{
    generate_ontology, precision_recall, update_stream, GlobalMerge, OntologySpec, UpdateSpec,
};

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} µs")
    }
}

/// Before/after medians (µs) for the hot-path set, both measured on
/// the *same* dev machine in the session that landed the label-indexed
/// adjacency layer ("pre" = string-compare `admits`, set-probe
/// `find_edge`; "post" = the id layer). Emitted as a self-contained
/// `index_layer_reference` block so the trajectory the PR banked stays
/// on record; the live `results` medians are machine-local and are
/// deliberately NOT compared against these — a ratio across different
/// machines would conflate hardware with the code change.
const INDEX_LAYER_REFERENCE_US: &[(&str, f64, f64)] = &[
    ("transitive_pairs_subclass", 12650.3, 2039.6),
    ("out_neighbors_subclass_sweep", 550.2, 311.4),
    ("descendants_root", 1430.6, 480.5),
    ("bfs_backward_subclass", 1332.0, 401.4),
    ("reachable_verbs", 3204.8, 1291.6),
    ("find_edge_all_triples", 4748.8, 3652.3),
];

/// Before/after medians (µs) for the `find_edge` point-probe across
/// the edge-index redesigns, each stage measured pre/post on the same
/// dev machine in the session that landed it (ROADMAP "Point-probe
/// latency"):
///
/// * `hashmap_to_inline_key` — `FxHashMap<(NodeId, LabelId, NodeId),
///   EdgeId>` probe replaced by one flat open-addressed array with the
///   key inline (`onion_graph::edge_index`);
/// * `inline_key_to_l2_subtables` — the flat table split into
///   per-source sub-tables capped at 256 KiB so a probe stream's
///   universe stays L2-resident. Measured back-to-back on the
///   single-core dev container, whose run-to-run drift (~1.2×)
///   swamps the ~2% median delta — recorded as within-noise there;
///   the lever targets hosts where the probe set exceeds L2.
///
/// Same-machine pairs — like `index_layer_reference`, not comparable
/// against the live machine-local `results`.
const POINT_PROBE_STAGES_US: &[(&str, f64, f64)] =
    &[("hashmap_to_inline_key", 4013.5, 3224.4), ("inline_key_to_l2_subtables", 3511.3, 3457.9)];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = args.iter().any(|a| a == "--metrics");
    args.retain(|a| a != "--metrics");
    if metrics {
        onion_core::obs::set_enabled(true);
    }
    if args.first().map(String::as_str) == Some("--json") {
        let compare_at = args.iter().position(|a| a == "--compare");
        let base = compare_at.and_then(|i| args.get(i + 1)).cloned();
        let path = args
            .get(1)
            .filter(|_| compare_at != Some(1))
            .map(String::as_str)
            .unwrap_or("BENCH_onion.json");
        emit_json(path);
        if metrics {
            dump_metrics();
        }
        if let Some(base) = base {
            compare_baselines(&base, path);
        }
        return;
    }
    println!("# ONION reproduction — experiment run\n");
    e1_fig2();
    e2_pipeline();
    b1_maintenance();
    b2_generation();
    b2b_matcher_ablation();
    b3_patterns();
    b4_query();
    b5_algebra();
    b6_inference();
    b7_compose();
    b8_triage();
    b14_observability();
    b15_query_cache();
    if metrics {
        dump_metrics();
    }
    println!("\ndone.");
}

/// Prints the Prometheus text export of the global `onion-obs`
/// registry — the `--metrics` payload, emitted after the selected run
/// so the samples reflect the whole sweep.
fn dump_metrics() {
    println!("\n## onion-obs metrics (Prometheus text format)\n");
    print!("{}", onion_core::obs::global().snapshot().to_prometheus());
}

/// One end-to-end median series entry for the baseline file.
struct EndToEnd {
    name: &'static str,
    median_us: f64,
    reps: usize,
}

/// B1 end-to-end: incremental articulation maintenance after a 20-op
/// update stream at the 1000-concept tier.
fn b1_end_to_end_median() -> EndToEnd {
    let p = pair(11, 1000, 0.1);
    let art = articulated(&p);
    let generator = ArticulationGenerator::new();
    let spec = UpdateSpec { seed: 3, ops: 20, bridged_fraction: 0.1, delete_fraction: 0.2 };
    let ops = update_stream(&p.left, &art, &spec);
    let mut g = p.left.graph().clone();
    onion_core::graph::ops::apply_all(&mut g, &ops).unwrap();
    let evolved = Ontology::from_graph(g).unwrap();
    let reps = 9;
    let median_us = median_micros(reps, || {
        let mut a = art.clone();
        apply_delta(&mut a, "left", &ops, &[&evolved, &p.right], &generator, None).unwrap();
    });
    EndToEnd { name: "b1_incremental_1000c", median_us, reps }
}

/// B4 end-to-end: cross-source query (plan + execute) over 10k
/// instances per side.
fn b4_end_to_end_median() -> EndToEnd {
    let p = pair(31, 400, 0.25);
    let art = articulated(&p);
    let (lkb, rkb) = instance_kbs(&p, 10_000);
    let lw = InMemoryWrapper::new(lkb);
    let rw = InMemoryWrapper::new(rkb);
    let conversions = ConversionRegistry::standard();
    let class = p.truth[0].1.split_once('.').unwrap().1.to_string();
    let query = Query::all(&class).select("Price").filter("Price", CmpOp::Lt, Value::Num(25_000.0));
    let sources: Vec<&Ontology> = vec![&p.left, &p.right];
    let wrappers: Vec<&dyn Wrapper> = vec![&lw, &rw];
    let reps = 7;
    let median_us = median_micros(reps, || {
        execute(&query, &art, &sources, &conversions, &wrappers).unwrap();
    });
    EndToEnd { name: "b4_query_10k_inst", median_us, reps }
}

/// Runs the baseline suite (hot paths + end-to-end medians + the B10
/// parallel matrix + the B11 incremental-publish curve + the B12
/// inference-seam series + the B13 durability series + the B14
/// observability-overhead pairs) and writes `BENCH_onion.json`.
/// Hand-rolled JSON: the workspace is offline, no serde.
fn emit_json(path: &str) {
    let tier = onion_bench::hotpaths::tier();
    eprintln!(
        "running graph hot-path set on the {} -node / {} -edge tier …",
        tier.nodes, tier.edges
    );
    let results = onion_bench::hotpaths::run_all();
    eprintln!("running end-to-end medians (B1 incremental, B4 query) …");
    let end_to_end = [b1_end_to_end_median(), b4_end_to_end_median()];
    eprintln!("running B10 parallel batches (byte-identity asserted per thread count) …");
    let b10 = onion_bench::parallel::run_b10();
    eprintln!("running B11 incremental publish (exact dirty-shard rebuilds asserted) …");
    let b11 = onion_bench::publish::run_b11();
    eprintln!("running B12 inference seam (string/interned fact-set identity asserted) …");
    let b12 = onion_bench::inference::run_b12();
    eprintln!("running B13 durability (WAL append / checkpoint / recovery, exactness asserted) …");
    let b13 = onion_bench::durability::run_b13();
    eprintln!("running B14 observability overhead (disabled vs enabled recording) …");
    let b14 = onion_bench::observability::run_b14(5);
    eprintln!("running B15 query cache (checksums + hit ratio + 10x warm bar asserted) …");
    let b15 = onion_bench::cache::run_b15(5);
    eprintln!(
        "running B16 shard-local saturation (fixpoint identity + merge-stream conservation \
         asserted) …"
    );
    let b16 = onion_bench::shardlocal::run_b16();
    let mut body = String::new();
    body.push_str("{\n  \"schema\": \"onion-bench/v9\",\n");
    body.push_str(&format!(
        "  \"tier\": {{ \"seed\": {}, \"nodes\": {}, \"edges\": {} }},\n",
        tier.seed, tier.nodes, tier.edges
    ));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{ \"name\": \"{}\", \"median_us\": {:.1}, \"min_us\": {:.1}, \"max_us\": \
             {:.1}, \"spread\": {:.2}, \"reps\": {}, \"checksum\": {} }}{}\n",
            r.name,
            r.median_us,
            r.min_us,
            r.max_us,
            r.spread(),
            r.reps,
            r.checksum,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"end_to_end\": [\n");
    for (i, e) in end_to_end.iter().enumerate() {
        body.push_str(&format!(
            "    {{ \"name\": \"{}\", \"median_us\": {:.1}, \"reps\": {} }}{}\n",
            e.name,
            e.median_us,
            e.reps,
            if i + 1 == end_to_end.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    // checksum is a full-range u64 — emitted as a hex string because
    // bare JSON numbers above 2^53 lose precision in most consumers
    body.push_str(&format!(
        "  \"b10_parallel\": {{\n    \"closure_sources\": {}, \"batch_queries\": {}, \
         \"available_parallelism\": {}, \"checksum\": \"{:#018x}\",\n    \"rows\": [\n",
        b10.closure_sources, b10.batch_queries, b10.available_parallelism, b10.rows[0].checksum
    ));
    for (i, row) in b10.rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"threads\": {}, \"closure_us\": {:.1}, \"closure_per_sec\": {:.0}, \
             \"closure_speedup\": {:.2}, \"query_us\": {:.1}, \"query_per_sec\": {:.0}, \
             \"query_speedup\": {:.2} }}{}\n",
            row.threads,
            row.closure_us,
            row.closure_per_sec,
            b10.closure_speedup(row),
            row.query_us,
            row.query_per_sec,
            b10.query_speedup(row),
            if i + 1 == b10.rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  },\n");
    body.push_str(&format!(
        "  \"b11_incremental_publish\": {{\n    \"nodes\": {}, \"edges\": {}, \"shards\": {}, \
         \"reps\": {},\n    \"rows\": [\n",
        b11.nodes, b11.edges, b11.shards, b11.reps
    ));
    for (i, row) in b11.rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"dirty_shards\": {}, \"fraction\": {:.3}, \"median_us\": {:.1}, \
             \"min_us\": {:.1}, \"max_us\": {:.1}, \"speedup_vs_full\": {:.2} }}{}\n",
            row.dirty_shards,
            row.fraction,
            row.median_us,
            row.min_us,
            row.max_us,
            b11.speedup_vs_full(row),
            if i + 1 == b11.rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  },\n");
    body.push_str(&format!(
        "  \"b12_inference\": {{\n    \"note\": \"seeded FactBase build + saturation on the \
         10k-class tree tier; b12_seed_string_10k is the frozen pre-refactor string engine \
         (onion_rules::reference), the interned series are the AtomId path (cold = empty \
         table, warm = shared-table steady state); the *_deep10k rows saturate the 10k-class \
         deep-hierarchy tier (500 chains x 20 deep) with the naive loop, the semi-naive \
         engine, and the 4-thread shard-parallel engine; fact sets, checksums, and \
         derivation counts are asserted identical across engines (and across thread counts) \
         before timing\",\n    \"classes\": {}, \
         \"seeded_facts\": {}, \"derived\": {},\n    \"deep_classes\": {}, \
         \"deep_seeded\": {}, \"deep_derived\": {}, \"deep_rounds\": {},\n    \"rows\": [\n",
        b12.classes,
        b12.seeded_facts,
        b12.derived,
        b12.deep_classes,
        b12.deep_seeded,
        b12.deep_derived,
        b12.deep_rounds
    ));
    for (i, r) in b12.rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"name\": \"{}\", \"median_us\": {:.1}, \"min_us\": {:.1}, \"max_us\": \
             {:.1}, \"spread\": {:.2}, \"reps\": {}, \"checksum\": {} }}{}\n",
            r.name,
            r.median_us,
            r.min_us,
            r.max_us,
            r.spread(),
            r.reps,
            r.checksum,
            if i + 1 == b12.rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  },\n");
    body.push_str(&format!(
        "  \"b13_durability\": {{\n    \"note\": \"durable WAL stack on the tier: \
         b13_wal_append_1k_ops is one group-flushed committed batch of {} EdgeAdd ops \
         (Begin..Commit, one write + sync_data; checksum = final LSN); the checkpoint rows \
         dirty k of 64 shards with the B11 content-neutral self-loop probe and assert the \
         checkpoint rewrote exactly k shards and reused 64-k; the recover rows reopen a \
         WAL-only directory (no manifest shortcut) and assert the replayed edge count\",\n    \
         \"nodes\": {}, \"edges\": {}, \"shards\": {}, \"reps\": {}, \"batch_ops\": {},\n    \
         \"rows\": [\n",
        onion_bench::durability::B13_BATCH_OPS,
        b13.nodes,
        b13.edges,
        b13.shards,
        b13.reps,
        onion_bench::durability::B13_BATCH_OPS
    ));
    for (i, r) in b13.rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"name\": \"{}\", \"median_us\": {:.1}, \"min_us\": {:.1}, \"max_us\": \
             {:.1}, \"spread\": {:.2}, \"reps\": {}, \"checksum\": {} }}{}\n",
            r.name,
            r.median_us,
            r.min_us,
            r.max_us,
            r.spread(),
            r.reps,
            r.checksum,
            if i + 1 == b13.rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  },\n");
    body.push_str(&format!(
        "  \"b14_observability\": {{\n    \"note\": \"onion-obs recording overhead: each \
         workload timed with recording disabled (the production default — one relaxed atomic \
         load per instrumented site) and enabled (striped relaxed fetch_add); publish = {} \
         one-dirty-shard publish rounds on the B11 fixture, infer = semi-naive saturation of \
         a {}-node transitivity chain (derivation count asserted identical in both modes), \
         count_burst = {} bare count!+observe_us! macro hits; overhead_* = enabled/disabled \
         median ratio\",\n    \"publish_rounds\": {}, \"chain\": {}, \"burst\": {}, \"reps\": \
         {},\n    \"overhead_publish\": {:.2}, \"overhead_infer\": {:.2}, \
         \"overhead_count_burst\": {:.2},\n    \"rows\": [\n",
        onion_bench::observability::B14_PUBLISH_ROUNDS,
        onion_bench::observability::B14_CHAIN,
        onion_bench::observability::B14_BURST,
        onion_bench::observability::B14_PUBLISH_ROUNDS,
        onion_bench::observability::B14_CHAIN,
        onion_bench::observability::B14_BURST,
        b14.rows[0].reps,
        b14.overhead("publish"),
        b14.overhead("infer"),
        b14.overhead("count_burst"),
    ));
    for (i, r) in b14.rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"name\": \"{}\", \"median_us\": {:.1}, \"min_us\": {:.1}, \"max_us\": \
             {:.1}, \"reps\": {} }}{}\n",
            r.name,
            r.median_us,
            r.min_us,
            r.max_us,
            r.reps,
            if i + 1 == b14.rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  },\n");
    body.push_str(&format!(
        "  \"b15_query_cache\": {{\n    \"note\": \"epoch-keyed hot-result cache on the \
         serving path: cold_miss republishes before every rep (fresh state epoch, so every \
         lookup misses and pays full plan + execute), warm_hit repeats the identical \
         {}-query batch at a pinned epoch (every result served from cache; hit ratio \
         asserted > 0.999), publish_storm edits + publishes then runs the batch twice per \
         rep (re-execute, then hit) with per-rep checksum equality asserted — the \
         stale-read kill-switch. The >=10x warm-vs-cold bar and all checksums are asserted \
         inside the run, not just recorded\",\n    \"queries\": {}, \"concepts\": {}, \
         \"instances\": {}, \"reps\": {},\n    \"speedup_warm_vs_cold\": {:.1}, \
         \"warm_hit_ratio\": {:.4}, \"checksum\": \"{:#018x}\",\n    \"rows\": [\n",
        onion_bench::cache::B15_QUERIES,
        onion_bench::cache::B15_QUERIES,
        onion_bench::cache::B15_CONCEPTS,
        onion_bench::cache::B15_INSTANCES,
        b15.rows[0].reps,
        b15.speedup,
        b15.warm_hit_ratio,
        b15.checksum,
    ));
    for (i, r) in b15.rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"name\": \"{}\", \"median_us\": {:.1}, \"min_us\": {:.1}, \"max_us\": \
             {:.1}, \"reps\": {} }}{}\n",
            r.name,
            r.median_us,
            r.min_us,
            r.max_us,
            r.reps,
            if i + 1 == b15.rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  },\n");
    body.push_str(&format!(
        "  \"b16_shardlocal_saturation\": {{\n    \"note\": \"shard-local semi-naive \
         saturation on the deep-hierarchy tier: workers own fact partitions with local \
         atom tables, exchange per-round deltas through per-pair mailboxes, and fold into \
         the canonical table once, at fixpoint. Before timing, the gate asserts fixpoint \
         identity with the sequential engine at shards x threads, byte-identical \
         InferenceStats across thread counts, and merge-stream conservation: the sum of \
         the per-worker merge ledgers equals the parallel engine's single-barrier push \
         count while the busiest owner handles strictly less — the per-round global merge \
         eliminated, asserted on counters so it holds on a single-core host\",\n    \
         \"classes\": {}, \"seeded\": {}, \"derived\": {}, \"rounds\": {},\n    \
         \"barrier_merge_facts\": {}, \"max_owner_merge_facts\": {}, \
         \"local_interned\": {},\n    \"rows\": [\n",
        b16.classes,
        b16.seeded,
        b16.derived,
        b16.rounds,
        b16.barrier_merge_facts,
        b16.max_owner_merge_facts,
        b16.local_interned,
    ));
    for (i, r) in b16.rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"name\": \"{}\", \"median_us\": {:.1}, \"min_us\": {:.1}, \"max_us\": \
             {:.1}, \"reps\": {} }}{}\n",
            r.name,
            r.median_us,
            r.min_us,
            r.max_us,
            r.reps,
            if i + 1 == b16.rows.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  },\n");
    body.push_str(
        "  \"point_probe_reference\": {\n    \"note\": \"pre/post find_edge_all_triples \
         medians for each edge-index redesign stage, every pair measured back-to-back on \
         the same dev machine in the session that landed it; same-machine speedups — do \
         not compare against the machine-local 'results' above. The l2_subtables stage's \
         delta is within the single-core dev container's run-to-run drift; it is recorded \
         for the trajectory, not claimed as a win there\",\n    \"stages\": [\n",
    );
    for (i, (name, pre, post)) in POINT_PROBE_STAGES_US.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"name\": \"{name}\", \"pre_us\": {pre:.1}, \"post_us\": {post:.1}, \
             \"speedup\": {:.2} }}{}\n",
            pre / post,
            if i + 1 == POINT_PROBE_STAGES_US.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  },\n");
    body.push_str(
        "  \"index_layer_reference\": {\n    \"note\": \"pre/post medians for the \
         label-indexed adjacency layer, both measured on the same dev machine when it \
         landed (PR 2); same-machine speedups — do not compare against the machine-local \
         'results' above\",\n    \"series\": [\n",
    );
    for (i, (name, pre, post)) in INDEX_LAYER_REFERENCE_US.iter().enumerate() {
        body.push_str(&format!(
            "      {{ \"name\": \"{name}\", \"pre_us\": {pre:.1}, \"post_us\": {post:.1}, \
             \"speedup\": {:.2} }}{}\n",
            pre / post,
            if i + 1 == INDEX_LAYER_REFERENCE_US.len() { "" } else { "," }
        ));
    }
    body.push_str("    ]\n  }\n}\n");
    std::fs::write(path, &body).expect("baseline file is writable");
    for r in &results {
        println!("{:<32} {}", r.name, fmt_us(r.median_us));
    }
    for e in &end_to_end {
        println!("{:<32} {}", e.name, fmt_us(e.median_us));
    }
    for row in &b10.rows {
        println!(
            "b10 {:>2} thread(s): closure {} ({:.0}/s, {:.2}x)  query {} ({:.0}/s, {:.2}x)",
            row.threads,
            fmt_us(row.closure_us),
            row.closure_per_sec,
            b10.closure_speedup(row),
            fmt_us(row.query_us),
            row.query_per_sec,
            b10.query_speedup(row)
        );
    }
    if b10.available_parallelism < 2 {
        println!(
            "note: host reports available_parallelism = {}; B10 speedups are not meaningful here",
            b10.available_parallelism
        );
    }
    for row in &b11.rows {
        println!(
            "b11 {:>2}/{} dirty shards: publish {} ({:.2}x vs full rebuild)",
            row.dirty_shards,
            b11.shards,
            fmt_us(row.median_us),
            b11.speedup_vs_full(row)
        );
    }
    for r in &b12.rows {
        println!("{:<32} {}", r.name, fmt_us(r.median_us));
    }
    let (string_build, interned_warm) = (b12.rows[0].median_us, b12.rows[2].median_us);
    println!(
        "b12 seeded build: interned-warm is {:.2}x the string baseline ({} facts, {} derived)",
        string_build / interned_warm,
        b12.seeded_facts,
        b12.derived
    );
    let (naive_deep, semi_deep) = (b12.rows[4].median_us, b12.rows[6].median_us);
    println!(
        "b12 deep tier: semi-naive warm is {:.2}x the naive loop ({} seeds, {} derived, {} \
         rounds)",
        naive_deep / semi_deep,
        b12.deep_seeded,
        b12.deep_derived,
        b12.deep_rounds
    );
    for r in &b13.rows {
        println!("{:<32} {}", r.name, fmt_us(r.median_us));
    }
    for r in &b14.rows {
        println!("{:<32} {}", r.name, fmt_us(r.median_us));
    }
    println!(
        "b14 overhead (enabled/disabled): publish {:.2}x  infer {:.2}x  count_burst {:.2}x",
        b14.overhead("publish"),
        b14.overhead("infer"),
        b14.overhead("count_burst")
    );
    for r in &b15.rows {
        println!("{:<32} {}", r.name, fmt_us(r.median_us));
    }
    println!(
        "b15 query cache: warm hits {:.1}x faster than cold misses (hit ratio {:.4})",
        b15.speedup, b15.warm_hit_ratio
    );
    for r in &b16.rows {
        println!("{:<32} {}", r.name, fmt_us(r.median_us));
    }
    println!(
        "b16 shard-local: busiest owner merges {} of {} barrier pushes ({} locally interned \
         symbols, {} derived in {} rounds)",
        b16.max_owner_merge_facts,
        b16.barrier_merge_facts,
        b16.local_interned,
        b16.derived,
        b16.rounds
    );
    let worst_spread =
        results.iter().map(onion_bench::hotpaths::BenchResult::spread).fold(1.0f64, f64::max);
    println!(
        "hot-path run-to-run spread (max over series, slowest/fastest rep): {worst_spread:.2}x"
    );
    println!("wrote {path}");
}

/// Extracts every `"name": …, "median_us": …` series from one of our
/// baseline files (writer keeps each entry on one line, so a line scan
/// is a complete parser for this format — the workspace has no serde).
fn parse_medians(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else { continue };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else { continue };
        let name = &rest[..name_end];
        let Some(med_at) = line.find("\"median_us\": ") else { continue };
        let med_rest = &line[med_at + 13..];
        let med_str: String =
            med_rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        if let Ok(v) = med_str.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Warn-only threshold on the machine-normalised ratio: past this a
/// series prints a `::warning::`.
const WARN_RATIO: f64 = 2.0;
/// Failure threshold on the machine-normalised ratio: past this a
/// series prints an `::error::` and the run exits non-zero.
///
/// The comparison never gates on absolute timings — the committed
/// baseline comes from a different machine than the CI runner. Each
/// series' raw ratio (fresh/base) is divided by the **median ratio
/// across all series**, which absorbs a uniformly slower or faster
/// host: if every series is 4× slower, every normalised ratio is 1×
/// and nothing fires; if one series is 4× slower while its peers hold
/// at 1×, that one fires. The 2×→3× gap is the variance margin,
/// calibrated on this (shared, noisy) dev container: per-repetition
/// tails spike to ~2.5× (the committed `spread` fields record
/// slowest/fastest of ≥5 reps), but the *medians* the gate compares
/// moved < 1.5× per series across repeated runs — and under 1.25×
/// after machine-factor normalisation — so a normalised 3× median
/// cannot be noise; it is a shape change in the code.
const FAIL_RATIO: f64 = 3.0;

/// Compares a freshly written baseline against a committed one on
/// machine-normalised ratios (see [`FAIL_RATIO`]): `::warning::` past
/// 2×, `::error::` plus a non-zero exit past 3×. GitHub Actions
/// surfaces both and the exit code fails the CI step.
fn compare_baselines(base_path: &str, new_path: &str) {
    let Ok(base_text) = std::fs::read_to_string(base_path) else {
        println!("compare: no baseline at {base_path}, skipping");
        return;
    };
    let new_text = std::fs::read_to_string(new_path).expect("just wrote it");
    let base = parse_medians(&base_text);
    let fresh = parse_medians(&new_text);
    let mut ratios: Vec<(String, f64, f64, f64)> = Vec::new(); // (name, base, fresh, ratio)
    for (name, new_med) in &fresh {
        let Some((_, base_med)) = base.iter().find(|(n, _)| n == name) else { continue };
        if *base_med > 0.0 && *new_med > 0.0 {
            ratios.push((name.clone(), *base_med, *new_med, new_med / base_med));
        }
    }
    if ratios.len() < 3 {
        println!("compare: only {} common series vs {base_path}, skipping", ratios.len());
        return;
    }
    // the median ratio is the machine-speed factor between the host
    // that committed the baseline and this one
    let mut sorted: Vec<f64> = ratios.iter().map(|r| r.3).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let machine_factor = sorted[sorted.len() / 2];
    println!(
        "compare: machine-speed factor vs {base_path}: {machine_factor:.2}x (median over {} \
         series)",
        ratios.len()
    );
    // normalisation absorbs a uniformly slower host — but it would
    // equally absorb a code change that pessimises *most* series.
    // Surface a large factor so a human distinguishes the two (a slow
    // runner is fine; a code-wide regression warrants a re-baseline
    // review), without false-failing on legitimately slower hardware.
    if machine_factor > FAIL_RATIO {
        println!(
            "::warning::machine-speed factor is {machine_factor:.1}x — either this host is much \
             slower than the baseline machine, or a code change slowed most series uniformly; \
             check the dimensionless B10/B11 speedup columns before trusting the normalised gate"
        );
    }
    let mut warned = 0;
    let mut failed = 0;
    for (name, base_med, new_med, ratio) in &ratios {
        let norm = ratio / machine_factor;
        if norm > FAIL_RATIO {
            failed += 1;
            println!(
                "::error::bench regression: {name} {} -> {} ({norm:.1}x normalised, limit \
                 {FAIL_RATIO}x)",
                fmt_us(*base_med),
                fmt_us(*new_med),
            );
        } else if norm > WARN_RATIO {
            warned += 1;
            println!(
                "::warning::bench regression: {name} {} -> {} ({norm:.1}x normalised)",
                fmt_us(*base_med),
                fmt_us(*new_med),
            );
        }
    }
    if warned == 0 && failed == 0 {
        println!("compare: no series regressed by more than {WARN_RATIO}x (normalised)");
    } else {
        println!(
            "compare: {warned} series past {WARN_RATIO}x (warning), {failed} past {FAIL_RATIO}x \
             (failure), normalised"
        );
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

/// B14 table: observability overhead, recording disabled vs enabled,
/// per instrumented workload.
fn b14_observability() {
    println!("## B14 — observability overhead\n");
    let report = onion_bench::observability::run_b14(5);
    println!("| series | median | min | max |");
    println!("|---|---|---|---|");
    for row in &report.rows {
        println!(
            "| {} | {} | {} | {} |",
            row.name,
            fmt_us(row.median_us),
            fmt_us(row.min_us),
            fmt_us(row.max_us)
        );
    }
    for workload in ["publish", "infer", "count_burst"] {
        println!("b14 {workload}: enabled/disabled = {:.2}x", report.overhead(workload));
    }
    println!();
}

/// B15 table: query-cache serving path — cold miss vs warm hit vs
/// publish storm, checksums and hit ratio asserted inside the run.
fn b15_query_cache() {
    println!("## B15 — query cache serving path\n");
    let report = onion_bench::cache::run_b15(5);
    println!("| series | median | min | max |");
    println!("|---|---|---|---|");
    for row in &report.rows {
        println!(
            "| {} | {} | {} | {} |",
            row.name,
            fmt_us(row.median_us),
            fmt_us(row.min_us),
            fmt_us(row.max_us)
        );
    }
    println!(
        "b15: warm hits {:.1}x faster than cold misses (hit ratio {:.4})",
        report.speedup, report.warm_hit_ratio
    );
    println!();
}

fn e1_fig2() {
    println!("## E1 — Fig. 2 regeneration\n");
    let c = examples::carrier();
    let f = examples::factory();
    let art = ArticulationGenerator::new()
        .generate(&examples::fig2_rules(), &[&c, &f])
        .expect("fig2 generates");
    let (terms, bridges, rules) = art.stats();
    let unified = art.unified(&[&c, &f]).expect("unified");
    println!("| artefact | nodes | edges |");
    println!("|---|---|---|");
    println!("| carrier | {} | {} |", c.term_count(), c.graph().edge_count());
    println!("| factory | {} | {} |", f.term_count(), f.graph().edge_count());
    println!(
        "| articulation (transport) | {terms} | {} + {bridges} bridges |",
        art.ontology.graph().edge_count()
    );
    println!("| unified (computed) | {} | {} |", unified.node_count(), unified.edge_count());
    println!("| rules | {rules} | — |");
    println!();
}

fn e2_pipeline() {
    println!("## E2 — Fig. 1 architecture walkthrough\n");
    let mut onion = onion_core::OnionSystem::with_transport_lexicon();
    onion.add_source(examples::carrier());
    onion.add_source(examples::factory());
    onion.add_rules(examples::fig2_rules_text()).expect("rules parse");
    let report = onion.articulate("carrier", "factory", &mut AcceptAll).expect("articulates");
    let mut ckb = KnowledgeBase::new("carrier");
    ckb.add(Instance::new("MyCar", "Cars").with("Price", Value::Num(2203.71)));
    let mut fkb = KnowledgeBase::new("factory");
    fkb.add(Instance::new("pc7", "PassengerCar").with("Price", Value::Num(653.3)));
    onion.add_knowledge_base(ckb);
    onion.add_knowledge_base(fkb);
    let rs = onion.query("find Vehicle(Price)").expect("query runs");
    println!(
        "engine: {} rounds, {}/{} candidates accepted; query `find Vehicle(Price)` → {} rows, all normalised to 1000 EUR",
        report.rounds, report.accepted, report.proposed, rs.len()
    );
    println!();
}

fn b1_maintenance() {
    println!("## B1 — maintenance after a 20-op source update (10% bridged)\n");
    println!("| concepts | onion incremental | onion rebuild | global re-merge | incr. speedup vs merge |");
    println!("|---|---|---|---|---|");
    for &concepts in &[200usize, 1000, 4000] {
        let p = pair(11, concepts, 0.1);
        let art = articulated(&p);
        let generator = ArticulationGenerator::new();
        let spec = UpdateSpec { seed: 3, ops: 20, bridged_fraction: 0.1, delete_fraction: 0.2 };
        let ops = update_stream(&p.left, &art, &spec);
        let mut g = p.left.graph().clone();
        onion_core::graph::ops::apply_all(&mut g, &ops).unwrap();
        let evolved = Ontology::from_graph(g).unwrap();

        let incr = median_micros(9, || {
            let mut a = art.clone();
            apply_delta(&mut a, "left", &ops, &[&evolved, &p.right], &generator, None).unwrap();
        });
        let reb = median_micros(5, || {
            rebuild(&art, &[&evolved, &p.right], &generator).unwrap();
        });
        let merge = median_micros(5, || {
            GlobalMerge::rebuild(&[&evolved, &p.right], &p.lexicon);
        });
        println!(
            "| {concepts} | {} | {} | {} | {:.0}× |",
            fmt_us(incr),
            fmt_us(reb),
            fmt_us(merge),
            merge / incr
        );
    }
    println!();
}

fn b2_generation() {
    println!("## B2 — articulation generation: time and quality vs overlap\n");
    println!("| concepts | overlap | propose | engine (oracle) | precision | recall |");
    println!("|---|---|---|---|---|---|");
    for &concepts in &[100usize, 400, 1600] {
        for &overlap in &[0.05f64, 0.25] {
            let p = pair(17, concepts, overlap);
            let pipeline = || {
                MatcherPipeline::new()
                    .with(onion_core::articulate::ExactLabelMatcher)
                    .with(onion_core::articulate::SynonymMatcher::new(p.lexicon.clone()))
                    .with(onion_core::articulate::SimilarityMatcher {
                        threshold: 0.9,
                        max_pairs: 2_000_000,
                    })
            };
            let propose = median_micros(5, || {
                pipeline().propose(&p.left, &p.right, &RuleSet::new());
            });
            let mut art_holder = None;
            let engine_t = median_micros(3, || {
                let engine = ArticulationEngine::new(pipeline())
                    .with_config(EngineConfig { max_rounds: 2, ..Default::default() });
                let mut oracle = OracleExpert::new(p.truth.iter().cloned());
                let (art, _) = engine.run(&p.left, &p.right, &mut oracle, RuleSet::new()).unwrap();
                art_holder = Some(art);
            });
            let art = art_holder.expect("ran at least once");
            let m = precision_recall(&art.rules.rules, &p.truth_set());
            println!(
                "| {concepts} | {:.0}% | {} | {} | {:.2} | {:.2} |",
                overlap * 100.0,
                fmt_us(propose),
                fmt_us(engine_t),
                m.precision(),
                m.recall()
            );
        }
    }
    println!();
}

fn b2b_matcher_ablation() {
    println!("## B2b — matcher-mix ablation (400 concepts, 25% overlap, 50% renamed)\n");
    println!("| matcher mix | candidates | precision | recall | f1 |");
    println!("|---|---|---|---|---|");
    let p = pair(17, 400, 0.25);
    type MkPipeline<'a> = Box<dyn Fn() -> MatcherPipeline + 'a>;
    let mixes: Vec<(&str, MkPipeline)> = vec![
        (
            "exact only",
            Box::new(|| MatcherPipeline::new().with(onion_core::articulate::ExactLabelMatcher)),
        ),
        (
            "exact+synonym",
            Box::new(|| {
                MatcherPipeline::new()
                    .with(onion_core::articulate::ExactLabelMatcher)
                    .with(onion_core::articulate::SynonymMatcher::new(p.lexicon.clone()))
            }),
        ),
        (
            "exact+similarity",
            Box::new(|| {
                MatcherPipeline::new().with(onion_core::articulate::ExactLabelMatcher).with(
                    onion_core::articulate::SimilarityMatcher {
                        threshold: 0.9,
                        max_pairs: 2_000_000,
                    },
                )
            }),
        ),
        (
            "exact+synonym+similarity",
            Box::new(|| {
                MatcherPipeline::new()
                    .with(onion_core::articulate::ExactLabelMatcher)
                    .with(onion_core::articulate::SynonymMatcher::new(p.lexicon.clone()))
                    .with(onion_core::articulate::SimilarityMatcher {
                        threshold: 0.9,
                        max_pairs: 2_000_000,
                    })
            }),
        ),
    ];
    for (name, mk) in mixes {
        let candidates = mk().propose(&p.left, &p.right, &RuleSet::new());
        // quality as-if accepted wholesale (the automatic end of §1)
        let rules: Vec<ArticulationRule> = candidates.iter().map(|c| c.rule.clone()).collect();
        let m = precision_recall(&rules, &p.truth_set());
        println!(
            "| {name} | {} | {:.2} | {:.2} | {:.2} |",
            candidates.len(),
            m.precision(),
            m.recall(),
            m.f1()
        );
    }
    println!();
}

fn b3_patterns() {
    println!("## B3 — pattern matching (path3 pattern, matches/run)\n");
    println!("| classes | exact | relaxed edges | matches |");
    println!("|---|---|---|---|");
    for &classes in &[1000usize, 8000] {
        let o = generate_ontology(&OntologySpec::sized("g", 23, classes));
        let g = o.graph();
        let mut p3 = Pattern::new();
        let x = p3.any_node();
        let y = p3.any_node();
        let z = p3.any_node();
        p3.edge(x, "SubclassOf", y).edge(y, "SubclassOf", z);
        let mut count = 0usize;
        let exact = median_micros(5, || {
            count = Matcher::new(g).count(&p3).unwrap();
        });
        let relaxed = median_micros(5, || {
            let cfg = MatchConfig { relax_edge_labels: true, ..Default::default() };
            Matcher::new(g).with_config(cfg).count(&p3).unwrap();
        });
        println!("| {classes} | {} | {} | {count} |", fmt_us(exact), fmt_us(relaxed));
    }
    println!();
}

fn b4_query() {
    println!("## B4 — cross-source query vs global schema\n");
    println!("| instances | onion (plan+exec) | plan only | global scan | rows |");
    println!("|---|---|---|---|---|");
    for &instances in &[1000usize, 10_000] {
        let p = pair(31, 400, 0.25);
        let art = articulated(&p);
        let (lkb, rkb) = instance_kbs(&p, instances);
        let lw = InMemoryWrapper::new(lkb.clone());
        let rw = InMemoryWrapper::new(rkb.clone());
        let conversions = ConversionRegistry::standard();
        // the simple-rule translation names the articulation node after
        // the RHS (right-side) term
        let class = p.truth[0].1.split_once('.').unwrap().1.to_string();
        let query =
            Query::all(&class).select("Price").filter("Price", CmpOp::Lt, Value::Num(25_000.0));
        let sources: Vec<&Ontology> = vec![&p.left, &p.right];
        let wrappers: Vec<&dyn Wrapper> = vec![&lw, &rw];

        let mut rows = 0usize;
        let onion_t = median_micros(7, || {
            rows = execute(&query, &art, &sources, &conversions, &wrappers).unwrap().len();
        });
        let plan_t = median_micros(7, || {
            onion_core::query::plan(&query, &art, &sources, &conversions).unwrap();
        });
        let gm = GlobalMerge::build(&[&p.left, &p.right], &p.lexicon);
        let global_class = gm.global_label("right", &class).unwrap_or(&class).to_string();
        let global_t = median_micros(7, || {
            let mut hits = 0usize;
            for (kb, source) in [(&lkb, "left"), (&rkb, "right")] {
                for inst in kb.instances() {
                    if gm.classes_of(source, &inst.class).iter().any(|c| c == &global_class) {
                        if let Some(Value::Num(n)) = inst.attrs.get("Price") {
                            if *n < 25_000.0 {
                                hits += 1;
                            }
                        }
                    }
                }
            }
            std::hint::black_box(hits);
        });
        println!(
            "| {instances} | {} | {} | {} | {rows} |",
            fmt_us(onion_t),
            fmt_us(plan_t),
            fmt_us(global_t)
        );
    }
    println!();
}

fn b5_algebra() {
    println!("## B5 — algebra operators (overlap 10% / 40%)\n");
    println!("| concepts | overlap | union | union (cached art) | intersection | difference |");
    println!("|---|---|---|---|---|---|");
    for &concepts in &[200usize, 1000, 4000] {
        for &overlap in &[0.1f64, 0.4] {
            let p = pair(43, concepts, overlap);
            let rules = truth_rules(&p);
            let art = articulated(&p);
            let generator = ArticulationGenerator::new();
            let u = median_micros(5, || {
                union(&p.left, &p.right, &rules, &generator).unwrap();
            });
            let uc = median_micros(5, || {
                onion_core::algebra::union::union_with(&p.left, &p.right, &art).unwrap();
            });
            let i = median_micros(5, || {
                intersect(&p.left, &p.right, &rules, &generator).unwrap();
            });
            let d = median_micros(5, || {
                difference(&p.left, &p.right, &art).unwrap();
            });
            println!(
                "| {concepts} | {:.0}% | {} | {} | {} | {} |",
                overlap * 100.0,
                fmt_us(u),
                fmt_us(uc),
                fmt_us(i),
                fmt_us(d)
            );
        }
    }
    println!();
}

fn b6_inference() {
    println!("## B6 — Horn engines on transitive closure (chain workload)\n");
    println!("| facts | semi-naive | naive | full-closure | atoms examined (sn / fc) |");
    println!("|---|---|---|---|---|");
    for &n in &[32usize, 96] {
        let program = HornProgram::parse("si(X, Z) :- si(X, Y), si(Y, Z).").unwrap();
        let mut times = Vec::new();
        let mut efforts = Vec::new();
        for strat in [Strategy::SemiNaive, Strategy::Naive, Strategy::FullClosure] {
            let mut effort = 0usize;
            let t = median_micros(3, || {
                let mut atoms = AtomTable::new();
                let mut fb = FactBase::new();
                for i in 0..n {
                    fb.add(&mut atoms, "si", &[&format!("t{i}"), &format!("t{}", i + 1)]);
                }
                let stats = InferenceEngine::new(program.clone())
                    .with_strategy(strat)
                    .run(&mut atoms, &mut fb)
                    .unwrap();
                effort = stats.atoms_examined;
            });
            times.push(t);
            efforts.push(effort);
        }
        println!(
            "| {n} | {} | {} | {} | {} / {} |",
            fmt_us(times[0]),
            fmt_us(times[1]),
            fmt_us(times[2]),
            efforts[0],
            efforts[2]
        );
    }
    println!();
}

fn b7_compose() {
    println!("## B7 — adding the k-th source\n");
    println!(
        "| k | onion add k-th (incl. prefix) | prefix only | derived add-cost | global re-merge |"
    );
    println!("|---|---|---|---|---|");
    let lexicon = transport_lexicon();
    for &k in &[3usize, 5, 8] {
        let all: Vec<Ontology> = (0..k)
            .map(|i| {
                let mut spec = OntologySpec::sized(&format!("src{i}"), 100 + i as u64, 150);
                spec.attr_density = 0.2;
                spec.instance_density = 0.0;
                generate_ontology(&spec)
            })
            .collect();
        let refs: Vec<&Ontology> = all.iter().collect();
        let prefix: Vec<&Ontology> = refs[..k - 1].to_vec();
        let full = median_micros(3, || {
            let mut comp = compose_all(&prefix, &lexicon, &mut ThresholdExpert::new(0.9)).unwrap();
            add_source(&mut comp, refs[k - 1], &lexicon, &mut ThresholdExpert::new(0.9)).unwrap();
        });
        let prefix_t = median_micros(3, || {
            compose_all(&prefix, &lexicon, &mut ThresholdExpert::new(0.9)).unwrap();
        });
        let merge = median_micros(3, || {
            GlobalMerge::rebuild(&refs, &lexicon);
        });
        println!(
            "| {k} | {} | {} | {} | {} |",
            fmt_us(full),
            fmt_us(prefix_t),
            fmt_us((full - prefix_t).max(0.0)),
            fmt_us(merge)
        );
    }
    println!();
}

fn b8_triage() {
    println!("## B8 — difference-guided triage vs update locality (50 ops)\n");
    println!("| bridged fraction | relevant ops | triage | triage+repair | no-triage rebuild |");
    println!("|---|---|---|---|---|");
    let p = pair(59, 1000, 0.2);
    let art = articulated(&p);
    let generator = ArticulationGenerator::new();
    for &bridged in &[0.0f64, 0.25, 0.75] {
        let spec =
            UpdateSpec { seed: 13, ops: 50, bridged_fraction: bridged, delete_fraction: 0.2 };
        let ops = update_stream(&p.left, &art, &spec);
        let mut g = p.left.graph().clone();
        onion_core::graph::ops::apply_all(&mut g, &ops).unwrap();
        let evolved = Ontology::from_graph(g).unwrap();
        let (relevant, _) = triage(&art, "left", &ops);
        let t_triage = median_micros(9, || {
            triage(&art, "left", &ops);
        });
        let t_repair = median_micros(7, || {
            let mut a = art.clone();
            apply_delta(&mut a, "left", &ops, &[&evolved, &p.right], &generator, None).unwrap();
        });
        let t_rebuild = median_micros(5, || {
            rebuild(&art, &[&evolved, &p.right], &generator).unwrap();
        });
        println!(
            "| {:.0}% | {}/{} | {} | {} | {} |",
            bridged * 100.0,
            relevant.len(),
            ops.len(),
            fmt_us(t_triage),
            fmt_us(t_repair),
            fmt_us(t_rebuild)
        );
    }
    println!();
}
