//! B12 — the interned-atom inference seam: seeded `FactBase` build and
//! saturation on the 10k-class tree tier.
//!
//! Introduced with the `AtomId` port of `onion-rules`, this experiment
//! records three build series plus the saturation run:
//!
//! * `b12_seed_string_10k` — the **pre-refactor baseline**: the frozen
//!   string-keyed engine (`onion_rules::reference`) seeded by building
//!   a `"onto.Term"` string per edge endpoint, exactly as the generator
//!   used to;
//! * `b12_seed_interned_cold_10k` — the interned path from an empty
//!   [`AtomTable`] (first-ever articulation run: every label is
//!   interned once);
//! * `b12_seed_interned_warm_10k` — the interned path against a warm
//!   shared table (the `OnionSystem` steady state: per-graph label
//!   memos hit on every fact, no hashing at all);
//! * `b12_saturate_10k` — seeded build plus a semi-naive run of the
//!   standard ONION program to fixpoint.
//!
//! The string and interned fact sets are asserted identical before any
//! timing is recorded, and the saturation derivation counts of the two
//! engines are asserted equal — the series measure the same work.

use onion_core::ontology::Ontology;
use onion_core::rules::atoms::AtomTable;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::FactBase;
use onion_core::rules::properties::RelationRegistry;
use onion_core::rules::{reference, InferenceEngine};
use onion_core::testkit::{
    generate_ontology, seed_subclass_facts, seed_subclass_facts_strings, OntologySpec,
};

use crate::hotpaths::{run_series, BenchResult};

/// The B12 report: tier shape plus the measured series.
pub struct B12Report {
    /// Classes in the generated ontology.
    pub classes: usize,
    /// `subclassof` facts each seeded build produces.
    pub seeded_facts: usize,
    /// Facts derived by the saturation run (identical across engines,
    /// asserted).
    pub derived: usize,
    /// The measured series, in emission order.
    pub rows: Vec<BenchResult>,
}

/// The tier: a 10k-class generated ontology (its `SubclassOf` edges are
/// an attachment tree, so the closure stays `O(n log n)`).
fn tier() -> Ontology {
    generate_ontology(&OntologySpec {
        attr_density: 0.0,
        instance_density: 0.0,
        ..OntologySpec::sized("b12", 23, 10_000)
    })
}

/// Runs B12 and returns the report.
pub fn run_b12() -> B12Report {
    let onto = tier();
    let program = HornProgram::standard(&RelationRegistry::onion_default());

    // correctness gate first: both seeding paths produce the same facts
    // and both engines derive the same closure
    let mut atoms = AtomTable::new();
    let mut fb = FactBase::new();
    let seeded_facts = seed_subclass_facts(&onto, &mut atoms, &mut fb);
    let mut sref = reference::FactBase::new();
    let seeded_ref = seed_subclass_facts_strings(&onto, &mut sref);
    assert_eq!(seeded_facts, seeded_ref, "seeding paths must load the same facts");
    let stats = InferenceEngine::new(program.clone()).run(&mut atoms, &mut fb).unwrap();
    let ref_stats = reference::InferenceEngine::new(program.clone()).run(&mut sref).unwrap();
    assert_eq!(
        stats.derived, ref_stats.derived,
        "interned and string engines must derive the same closure"
    );

    let mut rows = Vec::new();
    // pre-refactor string baseline: format + hash two strings per edge
    rows.push(run_series("b12_seed_string_10k", 5, || {
        let mut fb = reference::FactBase::new();
        seed_subclass_facts_strings(&onto, &mut fb) as u64
    }));
    // interned, cold table per repetition (first-run shape)
    rows.push(run_series("b12_seed_interned_cold_10k", 5, || {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        seed_subclass_facts(&onto, &mut atoms, &mut fb) as u64
    }));
    // interned, one shared warm table (the OnionSystem steady state)
    let mut warm = AtomTable::new();
    {
        let mut fb = FactBase::new();
        seed_subclass_facts(&onto, &mut warm, &mut fb);
    }
    rows.push(run_series("b12_seed_interned_warm_10k", 7, || {
        let mut fb = FactBase::new();
        seed_subclass_facts(&onto, &mut warm, &mut fb) as u64
    }));
    // seeded build + saturation to fixpoint on the warm table
    rows.push(run_series("b12_saturate_10k", 3, || {
        let mut fb = FactBase::new();
        seed_subclass_facts(&onto, &mut warm, &mut fb);
        let stats = InferenceEngine::new(program.clone()).run(&mut warm, &mut fb).unwrap();
        stats.derived as u64
    }));

    B12Report { classes: onto.term_count(), seeded_facts, derived: stats.derived, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b12_runs_on_a_small_tier() {
        // same routines, toy size, so the suite stays fast
        let onto = generate_ontology(&OntologySpec {
            attr_density: 0.0,
            instance_density: 0.0,
            ..OntologySpec::sized("b12small", 23, 150)
        });
        let program = HornProgram::standard(&RelationRegistry::onion_default());
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let n = seed_subclass_facts(&onto, &mut atoms, &mut fb);
        assert!(n > 0);
        let stats = InferenceEngine::new(program.clone()).run(&mut atoms, &mut fb).unwrap();
        let mut sref = reference::FactBase::new();
        assert_eq!(seed_subclass_facts_strings(&onto, &mut sref), n);
        let rstats = reference::InferenceEngine::new(program).run(&mut sref).unwrap();
        assert_eq!(stats.derived, rstats.derived);
        assert_eq!(stats.iterations, rstats.iterations);
        assert_eq!(stats.atoms_examined, rstats.atoms_examined);
    }
}
