//! B12 — the interned-atom inference seam: seeded `FactBase` build and
//! saturation on the 10k-class tree tier.
//!
//! Introduced with the `AtomId` port of `onion-rules`, this experiment
//! records three build series plus the saturation run:
//!
//! * `b12_seed_string_10k` — the **pre-refactor baseline**: the frozen
//!   string-keyed engine (`onion_rules::reference`) seeded by building
//!   a `"onto.Term"` string per edge endpoint, exactly as the generator
//!   used to;
//! * `b12_seed_interned_cold_10k` — the interned path from an empty
//!   [`AtomTable`] (first-ever articulation run: every label is
//!   interned once);
//! * `b12_seed_interned_warm_10k` — the interned path against a warm
//!   shared table (the `OnionSystem` steady state: per-graph label
//!   memos hit on every fact, no hashing at all);
//! * `b12_saturate_10k` — seeded build plus a semi-naive run of the
//!   standard ONION program to fixpoint.
//!
//! The shard-parallel semi-naive PR adds the **10k-class
//! deep-hierarchy tier** ([`deep_chain_ontology`]: 500 chains × 20
//! deep — the saturation-adversarial shape, where transitive closure
//! derives ~10× the seed count):
//!
//! * `b12_naive_deep10k` — the naive loop: every round re-joins the
//!   entire growing fact base;
//! * `b12_seminaive_cold_deep10k` / `b12_seminaive_warm_deep10k` —
//!   the semi-naive production engine from a cold / warm atom table;
//! * `b12_parallel_saturation_deep10k` — shard-parallel seeding plus
//!   the `onion-exec` work-unit engine on 4 threads.
//!
//! The string and interned fact sets are asserted identical before any
//! timing is recorded, the saturation derivation counts of all engines
//! are asserted equal, and the deep tier additionally asserts
//! fact-set checksums and thread-count-invariant `InferenceStats`
//! (as B10 does for closure) — the series measure the same work.

use onion_core::exec::{fact_set_checksum, par_seed_subclass_facts, Executor, ParallelEngine};
use onion_core::ontology::Ontology;
use onion_core::rules::atoms::AtomTable;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::{FactBase, Strategy};
use onion_core::rules::properties::RelationRegistry;
use onion_core::rules::{reference, InferenceEngine, InferenceStats};
use onion_core::testkit::{
    deep_chain_ontology, generate_ontology, seed_subclass_facts, seed_subclass_facts_strings,
    OntologySpec,
};

use crate::hotpaths::{run_series, BenchResult};

/// Threads for the parallel saturation row — fixed (not
/// `available_parallelism`) so the row is comparable across machines
/// via the machine-factor gate.
const PARALLEL_THREADS: usize = 4;

/// The B12 report: tier shape plus the measured series.
pub struct B12Report {
    /// Classes in the generated ontology.
    pub classes: usize,
    /// `subclassof` facts each seeded build produces.
    pub seeded_facts: usize,
    /// Facts derived by the saturation run (identical across engines,
    /// asserted).
    pub derived: usize,
    /// Classes in the deep-hierarchy tier.
    pub deep_classes: usize,
    /// Seed facts of the deep tier.
    pub deep_seeded: usize,
    /// Facts derived saturating the deep tier (identical across the
    /// naive, semi-naive, parallel, and reference engines — asserted).
    pub deep_derived: usize,
    /// Fixpoint rounds on the deep tier (semi-naive ledger).
    pub deep_rounds: usize,
    /// The measured series, in emission order.
    pub rows: Vec<BenchResult>,
}

/// The tier: a 10k-class generated ontology (its `SubclassOf` edges are
/// an attachment tree, so the closure stays `O(n log n)`).
fn tier() -> Ontology {
    generate_ontology(&OntologySpec {
        attr_density: 0.0,
        instance_density: 0.0,
        ..OntologySpec::sized("b12", 23, 10_000)
    })
}

/// Runs B12 and returns the report.
pub fn run_b12() -> B12Report {
    let onto = tier();
    let program = HornProgram::standard(&RelationRegistry::onion_default());

    // correctness gate first: both seeding paths produce the same facts
    // and both engines derive the same closure
    let mut atoms = AtomTable::new();
    let mut fb = FactBase::new();
    let seeded_facts = seed_subclass_facts(&onto, &mut atoms, &mut fb);
    let mut sref = reference::FactBase::new();
    let seeded_ref = seed_subclass_facts_strings(&onto, &mut sref);
    assert_eq!(seeded_facts, seeded_ref, "seeding paths must load the same facts");
    let stats = InferenceEngine::new(program.clone()).run(&mut atoms, &mut fb).unwrap();
    let ref_stats = reference::InferenceEngine::new(program.clone()).run(&mut sref).unwrap();
    assert_eq!(
        stats.derived, ref_stats.derived,
        "interned and string engines must derive the same closure"
    );

    let mut rows = Vec::new();
    // pre-refactor string baseline: format + hash two strings per edge
    rows.push(run_series("b12_seed_string_10k", 5, || {
        let mut fb = reference::FactBase::new();
        seed_subclass_facts_strings(&onto, &mut fb) as u64
    }));
    // interned, cold table per repetition (first-run shape)
    rows.push(run_series("b12_seed_interned_cold_10k", 5, || {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        seed_subclass_facts(&onto, &mut atoms, &mut fb) as u64
    }));
    // interned, one shared warm table (the OnionSystem steady state)
    let mut warm = AtomTable::new();
    {
        let mut fb = FactBase::new();
        seed_subclass_facts(&onto, &mut warm, &mut fb);
    }
    rows.push(run_series("b12_seed_interned_warm_10k", 7, || {
        let mut fb = FactBase::new();
        seed_subclass_facts(&onto, &mut warm, &mut fb) as u64
    }));
    // seeded build + saturation to fixpoint on the warm table
    rows.push(run_series("b12_saturate_10k", 3, || {
        let mut fb = FactBase::new();
        seed_subclass_facts(&onto, &mut warm, &mut fb);
        let stats = InferenceEngine::new(program.clone()).run(&mut warm, &mut fb).unwrap();
        stats.derived as u64
    }));

    // --- the deep-hierarchy tier: 500 chains × 20 deep, ~10k classes.
    // Transitive closure here derives ~10× the seed count, so the naive
    // re-join of the full fact base each round is the adversarial case
    // semi-naive exists for.
    let deep = deep_chain_ontology("deep", 500, 20);

    // deep-tier identity gate, before any timing (as B10 does): naive,
    // semi-naive, and the parallel engine at two thread counts must all
    // reach the same fixpoint — same derived count, same round count,
    // same fact-set checksum — and the parallel InferenceStats must be
    // byte-identical across thread counts.
    let mut deep_atoms = AtomTable::new();
    let mut deep_fb = FactBase::new();
    let deep_seeded = seed_subclass_facts(&deep, &mut deep_atoms, &mut deep_fb);
    let deep_stats =
        InferenceEngine::new(program.clone()).run(&mut deep_atoms, &mut deep_fb).unwrap();
    let deep_checksum = fact_set_checksum(&deep_atoms, &deep_fb);
    {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        assert_eq!(seed_subclass_facts(&deep, &mut atoms, &mut fb), deep_seeded);
        let naive = InferenceEngine::new(program.clone())
            .with_strategy(Strategy::Naive)
            .run(&mut atoms, &mut fb)
            .unwrap();
        assert_eq!(naive.derived, deep_stats.derived, "naive and semi-naive fixpoints differ");
        assert_eq!(fact_set_checksum(&atoms, &fb), deep_checksum);
    }
    let mut par_baseline: Option<InferenceStats> = None;
    for threads in [1, PARALLEL_THREADS] {
        let exec = Executor::new(threads);
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let seed = par_seed_subclass_facts(&exec, deep.graph(), &mut atoms, &mut fb);
        assert_eq!(seed.seeded, deep_seeded, "parallel seeding must load the same facts");
        let stats = ParallelEngine::new(program.clone()).run(&exec, &mut atoms, &mut fb).unwrap();
        assert_eq!(stats.derived, deep_stats.derived);
        assert_eq!(stats.iterations, deep_stats.iterations);
        assert_eq!(fact_set_checksum(&atoms, &fb), deep_checksum);
        match &par_baseline {
            None => par_baseline = Some(stats),
            Some(base) => {
                assert_eq!(&stats, base, "parallel stats must be thread-count-invariant")
            }
        }
    }

    // naive loop on a warm table — the comparison point the semi-naive
    // rows are measured against
    let mut deep_warm = AtomTable::new();
    {
        let mut fb = FactBase::new();
        seed_subclass_facts(&deep, &mut deep_warm, &mut fb);
    }
    rows.push(run_series("b12_naive_deep10k", 3, || {
        let mut fb = FactBase::new();
        seed_subclass_facts(&deep, &mut deep_warm, &mut fb);
        let stats = InferenceEngine::new(program.clone())
            .with_strategy(Strategy::Naive)
            .run(&mut deep_warm, &mut fb)
            .unwrap();
        stats.derived as u64
    }));
    // semi-naive from a cold atom table (first-run shape)
    rows.push(run_series("b12_seminaive_cold_deep10k", 3, || {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        seed_subclass_facts(&deep, &mut atoms, &mut fb);
        let stats = InferenceEngine::new(program.clone()).run(&mut atoms, &mut fb).unwrap();
        stats.derived as u64
    }));
    // semi-naive on the warm table — the row the naive loop is judged
    // against
    rows.push(run_series("b12_seminaive_warm_deep10k", 3, || {
        let mut fb = FactBase::new();
        seed_subclass_facts(&deep, &mut deep_warm, &mut fb);
        let stats = InferenceEngine::new(program.clone()).run(&mut deep_warm, &mut fb).unwrap();
        stats.derived as u64
    }));
    // shard-parallel seeding + work-unit saturation on 4 threads
    let par_exec = Executor::new(PARALLEL_THREADS);
    rows.push(run_series("b12_parallel_saturation_deep10k", 3, || {
        let mut fb = FactBase::new();
        par_seed_subclass_facts(&par_exec, deep.graph(), &mut deep_warm, &mut fb);
        let stats =
            ParallelEngine::new(program.clone()).run(&par_exec, &mut deep_warm, &mut fb).unwrap();
        stats.derived as u64
    }));

    B12Report {
        classes: onto.term_count(),
        seeded_facts,
        derived: stats.derived,
        deep_classes: deep.term_count(),
        deep_seeded,
        deep_derived: deep_stats.derived,
        deep_rounds: deep_stats.iterations,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b12_runs_on_a_small_tier() {
        // same routines, toy size, so the suite stays fast
        let onto = generate_ontology(&OntologySpec {
            attr_density: 0.0,
            instance_density: 0.0,
            ..OntologySpec::sized("b12small", 23, 150)
        });
        let program = HornProgram::standard(&RelationRegistry::onion_default());
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let n = seed_subclass_facts(&onto, &mut atoms, &mut fb);
        assert!(n > 0);
        let stats = InferenceEngine::new(program.clone()).run(&mut atoms, &mut fb).unwrap();
        let mut sref = reference::FactBase::new();
        assert_eq!(seed_subclass_facts_strings(&onto, &mut sref), n);
        let rstats = reference::InferenceEngine::new(program).run(&mut sref).unwrap();
        assert_eq!(stats.derived, rstats.derived);
        assert_eq!(stats.iterations, rstats.iterations);
        assert_eq!(stats.atoms_examined, rstats.atoms_examined);
    }
}
