//! B11 — incremental snapshot publish latency vs dirty-shard fraction.
//!
//! The sharded snapshot's contract is that
//! [`SnapshotStore::publish`](onion_core::graph::SnapshotStore::publish)
//! costs `O(dirty shards)`, not `O(graph)`. B11 measures exactly that
//! curve: on the testkit 10k-node / 50k-edge tier frozen at 64 shards,
//! it dirties `k ∈ {1, 4, 16, 32, 64}` shards per round (one
//! add+delete self-loop per shard, which leaves the graph's content
//! unchanged but bumps the shard's version stamp) and times the
//! publish. The runner asserts the store rebuilt **exactly** `k`
//! shards each round — "fast because it skipped work it should have
//! done" is a failure, not a result — and reports the latency per row
//! next to the full-rebuild (64/64) baseline so the scaling with dirty
//! fraction (rather than graph size) is visible in one series.

use onion_core::graph::snapshot::SnapshotStore;
use onion_core::graph::{NodeId, OntGraph, PublishStats};
use onion_core::testkit::generate_graph;

use crate::hotpaths::tier;

/// Shard count B11 freezes the tier at.
pub const B11_SHARDS: usize = 64;

/// One measured dirty fraction.
#[derive(Debug, Clone)]
pub struct B11Row {
    /// Shards dirtied (and rebuilt) per publish.
    pub dirty_shards: usize,
    /// `dirty_shards / B11_SHARDS`.
    pub fraction: f64,
    /// Median publish wall time, µs.
    pub median_us: f64,
    /// Fastest / slowest sample, µs (run-to-run variance).
    pub min_us: f64,
    /// Slowest sample, µs.
    pub max_us: f64,
}

/// The full B11 record.
#[derive(Debug, Clone)]
pub struct B11Report {
    /// Tier node count.
    pub nodes: usize,
    /// Tier edge count.
    pub edges: usize,
    /// Shard count of the frozen view.
    pub shards: usize,
    /// Timed repetitions per row.
    pub reps: usize,
    /// One row per dirty-shard count, ascending; the last row (all
    /// shards dirty) is the full-rebuild baseline.
    pub rows: Vec<B11Row>,
}

impl B11Report {
    /// Publish speedup of `row` over the full-rebuild baseline.
    pub fn speedup_vs_full(&self, row: &B11Row) -> f64 {
        self.rows.last().map(|full| full.median_us / row.median_us).unwrap_or(1.0)
    }
}

/// Prebuilt B11 workload: the tier graph frozen at [`B11_SHARDS`]
/// shards behind a [`SnapshotStore`], plus one probe node per shard to
/// hang the dirtying self-loop on.
pub struct B11Fixture {
    g: OntGraph,
    store: SnapshotStore,
    probe: Vec<NodeId>,
}

impl Default for B11Fixture {
    fn default() -> Self {
        Self::new()
    }
}

impl B11Fixture {
    /// Builds the standard fixture (tier graph, 64 shards, epoch 0
    /// published).
    pub fn new() -> Self {
        let mut g = generate_graph(&tier());
        g.set_shard_count(B11_SHARDS);
        let store = SnapshotStore::new(&g);
        let mut probe: Vec<Option<NodeId>> = vec![None; B11_SHARDS];
        for n in g.node_ids() {
            let s = g.shard_of(n);
            if probe[s].is_none() {
                probe[s] = Some(n);
            }
        }
        let probe = probe.into_iter().map(|p| p.expect("tier fills 64 shards")).collect();
        B11Fixture { g, store, probe }
    }

    /// Dirties exactly `k` shards: a content-neutral add+delete of a
    /// self-loop bumps each shard's version stamp without changing the
    /// graph. Not part of the timed region — B11 measures publish
    /// latency, not mutation cost.
    pub fn dirty(&mut self, k: usize) -> usize {
        let k = k.min(B11_SHARDS);
        for &n in &self.probe[..k] {
            let e = self.g.add_edge(n, "b11dirty", n).expect("probe node is live");
            self.g.delete_edge(e).expect("just added");
        }
        k
    }

    /// Publishes and asserts the store rebuilt exactly `expect_dirty`
    /// shards — "fast because it skipped work it should have done" is
    /// a failure, not a result.
    pub fn publish_checked(&self, expect_dirty: usize) -> PublishStats {
        let (_, stats) = self.store.publish_stats(&self.g);
        assert_eq!(
            (stats.rebuilt, stats.reused),
            (expect_dirty, B11_SHARDS - expect_dirty),
            "publish must rebuild exactly the dirty shards"
        );
        stats
    }

    /// One dirty-then-publish cycle (mutations included — use
    /// [`B11Fixture::dirty`] + [`B11Fixture::publish_checked`] to time
    /// the publish alone).
    pub fn publish_dirty(&mut self, k: usize) -> PublishStats {
        let k = self.dirty(k);
        self.publish_checked(k)
    }
}

/// Runs B11 on the standard tier (64 shards, 5 repetitions per row).
pub fn run_b11() -> B11Report {
    run_b11_sized(&[1, 4, 16, 32, 64], 5)
}

/// Parameterised B11 (smaller rows/reps for tests).
pub fn run_b11_sized(dirty_counts: &[usize], reps: usize) -> B11Report {
    let spec = tier();
    let mut fx = B11Fixture::new();
    let mut rows = Vec::new();
    for &k in dirty_counts {
        let k = k.min(B11_SHARDS);
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps.max(1) {
            fx.dirty(k);
            let t = std::time::Instant::now();
            fx.publish_checked(k);
            samples.push(t.elapsed().as_secs_f64() * 1e6);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        rows.push(B11Row {
            dirty_shards: k,
            fraction: k as f64 / B11_SHARDS as f64,
            median_us: samples[samples.len() / 2],
            min_us: samples[0],
            max_us: samples[samples.len() - 1],
        });
    }
    B11Report { nodes: spec.nodes, edges: spec.edges, shards: B11_SHARDS, reps: reps.max(1), rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b11_rebuild_accounting_holds_on_a_quick_run() {
        // the assert_eq inside run_b11_sized is the real test: any
        // publish that rebuilds more or less than the dirtied shard set
        // panics
        let report = run_b11_sized(&[1, 64], 1);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].dirty_shards, 1);
        assert_eq!(report.rows[1].dirty_shards, 64);
        assert!(report.rows.iter().all(|r| r.median_us > 0.0));
    }
}
