//! B10 — parallel batch throughput over a snapshot (`onion-exec`).
//!
//! Two workloads, each measured at 1/2/4/`available_parallelism`
//! threads on a shared immutable [`ShardedSnapshot`]:
//!
//! * **closure batch** — multi-source reachability (256 seeded sources,
//!   forward, all edges) over the testkit 10k-node / 50k-edge tier:
//!   the traversal shape reformulation and viewer queries lean on;
//! * **query batch** — `OnionSystem::run_batch` over 64 generated
//!   articulation-vocabulary queries against two 5000-instance sources
//!   (the B4 shape, batched).
//!
//! Every row records a checksum of the produced results and the runner
//! asserts it equals the sequential executor's checksum before
//! reporting a speedup — "fast but different" is a failure, not a
//! result. On a single-core container the speedup is necessarily ~1×;
//! the interesting numbers come from multi-core hardware, which is why
//! `available_parallelism` is part of the emitted record.

use onion_core::exec::{par_reachable, result_checksum, Executor, Fnv};
use onion_core::graph::snapshot::ShardedSnapshot;
use onion_core::graph::traverse::{Direction, EdgeFilter};
use onion_core::graph::NodeId;
use onion_core::prelude::*;
use onion_core::testkit::{closure_sources, generate_graph, random_queries};

use crate::hotpaths::tier;

/// One measured thread count.
#[derive(Debug, Clone)]
pub struct B10Row {
    /// Executor thread count.
    pub threads: usize,
    /// Median wall time of one closure batch, µs.
    pub closure_us: f64,
    /// Closure traversals per second at that median.
    pub closure_per_sec: f64,
    /// Median wall time of one query batch, µs.
    pub query_us: f64,
    /// Queries per second at that median.
    pub query_per_sec: f64,
    /// Checksum over the closure batch results (identical across rows).
    pub checksum: u64,
}

/// The full B10 record.
#[derive(Debug, Clone)]
pub struct B10Report {
    /// Number of closure sources per batch.
    pub closure_sources: usize,
    /// Number of queries per batch.
    pub batch_queries: usize,
    /// What the host reports as available parallelism.
    pub available_parallelism: usize,
    /// One row per measured thread count (ascending; first row is the
    /// sequential baseline).
    pub rows: Vec<B10Row>,
}

impl B10Report {
    /// Speedup of `row` over the sequential baseline for the closure
    /// batch.
    pub fn closure_speedup(&self, row: &B10Row) -> f64 {
        self.rows[0].closure_us / row.closure_us
    }

    /// Speedup of `row` over the sequential baseline for the query
    /// batch.
    pub fn query_speedup(&self, row: &B10Row) -> f64 {
        self.rows[0].query_us / row.query_us
    }
}

/// The thread counts a run measures: 1, 2, 4 and (when different) the
/// machine's available parallelism.
pub fn thread_counts() -> Vec<usize> {
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut v = vec![1, 2, 4];
    if !v.contains(&avail) {
        v.push(avail);
    }
    v.sort_unstable();
    v
}

/// Prebuilt B10 workload: tier snapshot + closure sources + an
/// articulated two-source system with a query batch.
pub struct ParallelFixture {
    /// Frozen tier graph.
    pub snapshot: ShardedSnapshot,
    /// Seeded closure sources.
    pub sources: Vec<NodeId>,
    system: onion_core::OnionSystem,
    queries: Vec<Query>,
}

impl ParallelFixture {
    /// Builds the standard fixture (`sources` closure seeds, `queries`
    /// batched queries, `instances` rows per knowledge base).
    pub fn new(sources: usize, queries: usize, instances: usize) -> Self {
        let g = generate_graph(&tier());
        let snapshot = g.snapshot();
        let sources = closure_sources(&g, sources, 41);

        let pair = crate::pair(31, 400, 0.25);
        let art = crate::articulated(&pair);
        let (lkb, rkb) = crate::instance_kbs(&pair, instances);
        let queries = random_queries(&art, "Price", queries, 23);
        let mut system = onion_core::OnionSystem::new(pair.lexicon.clone());
        system.add_source(pair.left.clone());
        system.add_source(pair.right.clone());
        system.add_knowledge_base(lkb);
        system.add_knowledge_base(rkb);
        // install the truth-generated articulation directly
        system.set_articulation(art);
        ParallelFixture { snapshot, sources, system, queries }
    }

    /// One closure batch on `exec`; returns per-source reach sets.
    pub fn closure_batch(&self, exec: &Executor) -> Vec<Vec<NodeId>> {
        par_reachable(exec, &self.snapshot, &self.sources, Direction::Forward, &EdgeFilter::All)
    }

    /// One query batch on `exec`; returns per-query result sets
    /// (shared `Arc`s — duplicate queries in the batch alias).
    pub fn query_batch(&self, exec: &Executor) -> Vec<std::sync::Arc<ResultSet>> {
        self.system
            .run_batch(exec, &self.queries)
            .into_iter()
            .map(|r| r.expect("generated queries execute"))
            .collect()
    }

    /// Number of queries in the batch.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Checksum of a query batch (row/attr aware, order sensitive).
    pub fn query_checksum(&self, results: &[std::sync::Arc<ResultSet>]) -> u64 {
        let mut h = Fnv::new();
        for rs in results {
            h.mix(rs.len() as u64);
            for row in &rs.rows {
                h.mix_bytes(row.id.as_bytes());
                h.mix(row.attrs.len() as u64);
            }
        }
        h.finish()
    }
}

/// Runs B10 on the standard workload (256 sources, 64 queries, 5000
/// instances per side) and asserts byte-identical results across all
/// thread counts.
pub fn run_b10() -> B10Report {
    run_b10_sized(256, 64, 5000, 5)
}

/// Parameterised B10 (smaller tiers for tests).
pub fn run_b10_sized(sources: usize, queries: usize, instances: usize, reps: usize) -> B10Report {
    let fx = ParallelFixture::new(sources, queries, instances);
    let seq = Executor::sequential();
    let baseline_closure = fx.closure_batch(&seq);
    let closure_ck = result_checksum(&fx.snapshot, &baseline_closure);
    let baseline_query = fx.query_batch(&seq);
    let query_ck = fx.query_checksum(&baseline_query);

    let mut rows = Vec::new();
    for threads in thread_counts() {
        let exec = Executor::new(threads);
        let got_closure = fx.closure_batch(&exec);
        assert_eq!(
            result_checksum(&fx.snapshot, &got_closure),
            closure_ck,
            "closure batch differs from the sequential path at {threads} threads"
        );
        assert_eq!(got_closure, baseline_closure, "closure results must be byte-identical");
        let got_query = fx.query_batch(&exec);
        assert_eq!(
            fx.query_checksum(&got_query),
            query_ck,
            "query batch differs from the sequential path at {threads} threads"
        );
        assert_eq!(got_query, baseline_query, "query results must be byte-identical");

        let closure_us = crate::median_micros(reps, || {
            std::hint::black_box(fx.closure_batch(&exec));
        });
        let query_us = crate::median_micros(reps, || {
            std::hint::black_box(fx.query_batch(&exec));
        });
        rows.push(B10Row {
            threads,
            closure_us,
            closure_per_sec: fx.sources.len() as f64 / (closure_us / 1e6),
            query_us,
            query_per_sec: fx.query_count() as f64 / (query_us / 1e6),
            checksum: closure_ck,
        });
    }
    B10Report {
        closure_sources: fx.sources.len(),
        batch_queries: fx.query_count(),
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b10_runs_on_a_small_tier_with_identical_results() {
        // the assert_eq!s inside run_b10_sized are the real test: any
        // divergence between thread counts panics
        let report = run_b10_sized(16, 8, 200, 1);
        assert_eq!(report.rows.len(), thread_counts().len());
        assert!(report.rows.iter().all(|r| r.checksum == report.rows[0].checksum));
        assert!(report.rows[0].closure_per_sec > 0.0);
        assert!(report.rows[0].query_per_sec > 0.0);
    }
}
