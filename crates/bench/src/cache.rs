//! B15 — query-cache serving path: cold miss vs warm hit vs
//! publish-storm mixed workload.
//!
//! The serving-tier contract under test:
//!
//! * **cold miss** — a batch of distinct queries against a system with
//!   the cache enabled but nothing cached (the epoch is bumped before
//!   every repetition, so every lookup misses and pays full plan +
//!   execute). This is the baseline the warm path is compared against.
//! * **warm hit** — the identical batch repeated at an unchanged
//!   epoch: every query is served from the cache. The acceptance bar
//!   (warm median ≥ 10× faster than cold median) is asserted inside
//!   [`run_b15`], not just eyeballed in the table.
//! * **publish storm** — the mixed workload: every repetition edits a
//!   source, publishes it (bumping the state epoch), then runs the
//!   batch twice — the first run re-executes (the bump retired every
//!   cached entry), the second hits. The per-repetition checksum
//!   equality of those two runs is the stale-read kill-switch, checked
//!   inside the timed loop.
//!
//! Result checksums (row/attr aware, order sensitive) and the cache
//! hit ratio are asserted in all three workloads — a cache that serves
//! a byte-different result fails the bench, not just the proptests.

use std::sync::Arc;

use onion_core::prelude::*;
use onion_core::testkit::random_queries;

/// Queries per batch.
pub const B15_QUERIES: usize = 64;
/// Instances per knowledge-base side.
pub const B15_INSTANCES: usize = 2000;
/// Concepts in the generated source pair.
pub const B15_CONCEPTS: usize = 400;

/// The B15 workload: an articulated system with instance data, a
/// fixed query batch, and the query cache enabled.
pub struct B15Fixture {
    system: onion_core::OnionSystem,
    queries: Vec<Query>,
    exec: Executor,
    probe_round: usize,
}

impl B15Fixture {
    /// Builds the standard fixture with `capacity` cache entries.
    pub fn new(capacity: usize) -> Self {
        Self::sized(capacity, B15_CONCEPTS, B15_QUERIES, B15_INSTANCES)
    }

    /// Parameterised fixture (smaller tiers for tests).
    pub fn sized(capacity: usize, concepts: usize, queries: usize, instances: usize) -> Self {
        let pair = crate::pair(31, concepts, 0.25);
        let art = crate::articulated(&pair);
        let (lkb, rkb) = crate::instance_kbs(&pair, instances);
        let queries = random_queries(&art, "Price", queries, 23);
        let mut system = onion_core::OnionSystem::new(pair.lexicon.clone());
        system.add_source(pair.left.clone());
        system.add_source(pair.right.clone());
        system.add_knowledge_base(lkb);
        system.add_knowledge_base(rkb);
        system.set_articulation(art);
        system.set_query_cache(capacity);
        B15Fixture { system, queries, exec: Executor::new(4), probe_round: 0 }
    }

    /// Number of queries in the batch.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Runs the batch once, returning the shared results.
    pub fn batch(&self) -> Vec<Arc<ResultSet>> {
        self.system
            .run_batch(&self.exec, &self.queries)
            .into_iter()
            .map(|r| r.expect("generated queries execute"))
            .collect()
    }

    /// Order-sensitive checksum of one batch's results.
    pub fn checksum(&self, results: &[Arc<ResultSet>]) -> u64 {
        let mut h = onion_core::exec::Fnv::new();
        for rs in results {
            h.mix(rs.len() as u64);
            for row in &rs.rows {
                h.mix_bytes(row.id.as_bytes());
                h.mix(row.attrs.len() as u64);
            }
        }
        h.finish()
    }

    /// Cache counters (the fixture always has a cache).
    pub fn stats(&self) -> CacheStats {
        self.system.query_cache_stats().expect("fixture cache enabled")
    }

    /// Bumps the state epoch without changing any query's answer: adds
    /// a uniquely-labelled self-loop probe edge to the left source and
    /// republishes it — an edit + publish with inert query semantics,
    /// so checksums must stay identical across the storm.
    pub fn edit_and_publish(&mut self) {
        self.probe_round += 1;
        let label = format!("b15probe{}", self.probe_round);
        let g = self.system.source_mut("left").expect("left source").graph_mut();
        let n = g.node_ids().next().expect("non-empty");
        g.add_edge(n, &label, n).expect("fresh probe label");
        self.system.publish_source("left").expect("left publishes");
    }

    /// The facade state epoch (monotonic across edits/publishes).
    pub fn epoch(&self) -> u64 {
        self.system.query_epoch()
    }
}

/// One measured B15 series.
#[derive(Debug, Clone)]
pub struct B15Row {
    /// Series name (`b15_cold_miss`, `b15_warm_hit`,
    /// `b15_publish_storm`).
    pub name: String,
    /// Median wall time over the repetitions, µs.
    pub median_us: f64,
    /// Fastest repetition, µs.
    pub min_us: f64,
    /// Slowest repetition, µs.
    pub max_us: f64,
    /// Timed repetitions.
    pub reps: usize,
}

/// The full B15 record.
#[derive(Debug, Clone)]
pub struct B15Report {
    /// All rows (cold, warm, storm).
    pub rows: Vec<B15Row>,
    /// Checksum every workload's batches agreed on.
    pub checksum: u64,
    /// `cold_median / warm_median` — the cache speedup factor.
    pub speedup: f64,
    /// Hit ratio observed across the warm workload (1.0 = every
    /// lookup served from cache).
    pub warm_hit_ratio: f64,
}

fn timed(name: &str, reps: usize, mut f: impl FnMut()) -> B15Row {
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    B15Row {
        name: name.to_string(),
        median_us: samples[samples.len() / 2],
        min_us: samples[0],
        max_us: *samples.last().expect("non-empty"),
        reps,
    }
}

/// Runs B15 on the standard tier with `reps` repetitions per row,
/// asserting checksums, the warm hit ratio, and the ≥10× warm-vs-cold
/// bar inside the run.
pub fn run_b15(reps: usize) -> B15Report {
    run_b15_sized(reps, B15_CONCEPTS, B15_QUERIES, B15_INSTANCES, true)
}

/// Parameterised B15. `assert_speedup` gates the ≥10× warm-hit bar
/// (kept on for the recorded run; tiny test tiers may switch it off —
/// at a handful of concepts the cold path is too cheap to clear 10×).
pub fn run_b15_sized(
    reps: usize,
    concepts: usize,
    queries: usize,
    instances: usize,
    assert_speedup: bool,
) -> B15Report {
    let mut fx = B15Fixture::sized(4096, concepts, queries, instances);
    let want = fx.checksum(&fx.batch());

    // cold: every rep starts at a fresh epoch, so every lookup misses
    let cold = timed("b15_cold_miss", reps, || {
        fx.edit_and_publish();
        let out = fx.batch();
        assert_eq!(fx.checksum(&out), want, "cold batch checksum");
    });

    // warm: prime once, then every rep is all hits at a pinned epoch
    fx.batch();
    let before = fx.stats();
    let warm = timed("b15_warm_hit", reps, || {
        let out = fx.batch();
        assert_eq!(fx.checksum(&out), want, "warm batch checksum");
    });
    let after = fx.stats();
    let lookups = (after.hits + after.misses) - (before.hits + before.misses);
    let warm_hit_ratio =
        if lookups == 0 { 0.0 } else { (after.hits - before.hits) as f64 / lookups as f64 };
    assert!(warm_hit_ratio > 0.999, "warm workload must be all hits (got ratio {warm_hit_ratio})");

    // publish storm: edit + publish, then miss-run and hit-run; the
    // two runs of each rep must agree byte-for-byte
    let storm = timed("b15_publish_storm", reps, || {
        fx.edit_and_publish();
        let fresh = fx.batch();
        let cached = fx.batch();
        assert_eq!(fx.checksum(&fresh), want, "post-publish batch checksum");
        assert_eq!(fx.checksum(&cached), want, "cached batch serves identical bytes");
    });

    let speedup = if warm.median_us > 0.0 { cold.median_us / warm.median_us } else { f64::NAN };
    if assert_speedup {
        assert!(
            speedup >= 10.0,
            "warm hits must be >=10x faster than cold misses (got {speedup:.1}x: cold {:.0}us, warm {:.0}us)",
            cold.median_us,
            warm.median_us
        );
    }
    B15Report { rows: vec![cold, warm, storm], checksum: want, speedup, warm_hit_ratio }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b15_small_tier_runs_and_validates() {
        let report = run_b15_sized(2, 60, 12, 150, false);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].name, "b15_cold_miss");
        assert_eq!(report.rows[1].name, "b15_warm_hit");
        assert_eq!(report.rows[2].name, "b15_publish_storm");
        assert!(report.warm_hit_ratio > 0.999);
        assert!(report.speedup.is_finite() && report.speedup > 0.0);
    }

    #[test]
    fn edit_and_publish_bumps_the_epoch_without_changing_results() {
        let mut fx = B15Fixture::sized(64, 60, 8, 100);
        let before = fx.epoch();
        let want = fx.checksum(&fx.batch());
        fx.edit_and_publish();
        assert!(fx.epoch() > before);
        assert_eq!(fx.checksum(&fx.batch()), want, "probe edits are query-inert");
    }
}
