//! B16 — shard-local saturation end to end on the deep-hierarchy tier.
//!
//! The shard-parallel engine (B12's `b12_parallel_saturation_deep10k`)
//! parallelises each round's joins but serialises every derived fact
//! through one shared atom table and one global merge barrier per
//! round. The shard-local engine removes both: workers seed and
//! saturate private partitions (own atom table, own store replica),
//! exchange per-round deltas through per-pair mailboxes, and fold into
//! the canonical table once, at fixpoint. This experiment measures that
//! path on the same 10k-class deep-hierarchy tier B12 uses
//! ([`deep_chain_ontology`]: 500 chains × 20 deep, closure ≈ 10× seed):
//!
//! * `b16_shardlocal_cold_deep10k` — canonical seeding from a cold
//!   atom table, then the shard-local engine (shards = threads = 4);
//! * `b16_shardlocal_warm_deep10k` — same on a warm shared table (the
//!   `OnionSystem` steady state, directly comparable to
//!   `b12_parallel_saturation_deep10k`);
//! * `b16_shardlocal_partseed_deep10k` — the full generator path:
//!   partitioned seeding into worker-local tables
//!   ([`par_seed_subclass_partitions`]) plus `run_partitioned`, so the
//!   canonical table is touched exactly once per repetition.
//!
//! ## Identity gate
//!
//! Before any timing, the gate asserts — at shards {1, 4} × threads
//! {1, 4} — that the shard-local engine reproduces the sequential
//! engine's derivation count, round count, and fact-set checksum; that
//! its `InferenceStats` are byte-identical across thread counts; that
//! the **sum** of its per-worker merge ledger equals the parallel
//! engine's single-barrier push count (the same merge stream,
//! distributed); and that with shards > 1 the busiest owner handles
//! strictly less than the whole stream — the per-round global merge
//! work is provably split, even on a single-core host.

use onion_core::exec::{
    fact_set_checksum, par_seed_subclass_facts, par_seed_subclass_partitions, Executor,
    ParallelEngine, ShardLocalEngine,
};
use onion_core::rules::atoms::AtomTable;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::FactBase;
use onion_core::rules::properties::RelationRegistry;
use onion_core::rules::{InferenceEngine, InferenceStats, ShardedFactBase};
use onion_core::testkit::{deep_chain_ontology, seed_subclass_facts};

use crate::hotpaths::{run_series, BenchResult};

/// Threads and shards for the timed rows — fixed (not
/// `available_parallelism`) so rows compare across machines via the
/// machine-factor gate.
const PARALLEL_THREADS: usize = 4;
const SHARDS: usize = 4;

/// The B16 report: tier shape, the merge-distribution evidence, and
/// the measured series.
pub struct B16Report {
    /// Classes in the deep-hierarchy tier.
    pub classes: usize,
    /// Seed facts of the tier.
    pub seeded: usize,
    /// Facts derived at fixpoint (identical across engines, asserted).
    pub derived: usize,
    /// Fixpoint rounds.
    pub rounds: usize,
    /// The parallel engine's single-barrier merge pushes (its one
    /// `worker_merge_facts` entry).
    pub barrier_merge_facts: usize,
    /// The shard-local engine's busiest owner at `SHARDS` (4)
    /// partitions — strictly less than `barrier_merge_facts`
    /// (asserted).
    pub max_owner_merge_facts: usize,
    /// Symbols interned into worker-local tables during partitioned
    /// seeding, summed.
    pub local_interned: usize,
    /// The measured series, in emission order.
    pub rows: Vec<BenchResult>,
}

/// Runs B16 and returns the report.
pub fn run_b16() -> B16Report {
    let deep = deep_chain_ontology("deep", 500, 20);
    let program = HornProgram::standard(&RelationRegistry::onion_default());

    // sequential baseline for the identity gate
    let mut seq_atoms = AtomTable::new();
    let mut seq_fb = FactBase::new();
    let seeded = seed_subclass_facts(&deep, &mut seq_atoms, &mut seq_fb);
    let seq_stats = InferenceEngine::new(program.clone()).run(&mut seq_atoms, &mut seq_fb).unwrap();
    let checksum = fact_set_checksum(&seq_atoms, &seq_fb);

    // parallel engine's barrier ledger: the stream the owners split
    let par_exec = Executor::new(PARALLEL_THREADS);
    let barrier_merge_facts = {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        par_seed_subclass_facts(&par_exec, deep.graph(), &mut atoms, &mut fb);
        let stats =
            ParallelEngine::new(program.clone()).run(&par_exec, &mut atoms, &mut fb).unwrap();
        assert_eq!(stats.worker_merge_facts.len(), 1, "one worker, one barrier");
        stats.worker_merge_facts[0]
    };

    // ---- identity gate: shards × threads, before any timing ----
    let mut max_owner_merge_facts = 0;
    for shards in [1usize, SHARDS] {
        let mut first: Option<InferenceStats> = None;
        for threads in [1usize, PARALLEL_THREADS] {
            let exec = Executor::new(threads);
            let mut atoms = AtomTable::new();
            let mut fb = FactBase::new();
            let seed = par_seed_subclass_facts(&exec, deep.graph(), &mut atoms, &mut fb);
            assert_eq!(seed.seeded, seeded);
            let stats = ShardLocalEngine::new(program.clone())
                .with_shards(shards)
                .run(&exec, &mut atoms, &mut fb)
                .unwrap();
            assert_eq!(stats.derived, seq_stats.derived, "shards={shards} threads={threads}");
            assert_eq!(stats.iterations, seq_stats.iterations);
            assert_eq!(fact_set_checksum(&atoms, &fb), checksum);
            let total: usize = stats.worker_merge_facts.iter().sum();
            assert_eq!(total, barrier_merge_facts, "same merge stream, distributed");
            if shards > 1 {
                let max = stats.worker_merge_facts.iter().copied().max().unwrap();
                assert!(
                    max < total,
                    "busiest owner ({max}) must see less than the whole stream ({total})"
                );
                max_owner_merge_facts = max;
            }
            match &first {
                None => first = Some(stats),
                Some(f) => assert_eq!(&stats, f, "thread-count-invariant at shards={shards}"),
            }
        }
    }

    // partitioned seeding (worker-local tables) for the reported
    // intern split and the partseed row's correctness
    let local_interned = {
        let mut sfb = ShardedFactBase::new(SHARDS);
        let seed = par_seed_subclass_partitions(&par_exec, deep.graph(), &mut sfb);
        assert_eq!(seed.seeded, seeded);
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let stats = ShardLocalEngine::new(program.clone())
            .with_shards(SHARDS)
            .run_partitioned(&par_exec, &mut sfb, &mut atoms, &mut fb)
            .unwrap();
        assert_eq!(stats.derived, seq_stats.derived);
        assert_eq!(fact_set_checksum(&atoms, &fb), checksum);
        assert_eq!(stats.worker_interned.len(), SHARDS);
        assert!(stats.worker_interned.iter().all(|&n| n > 0), "every worker interned locally");
        stats.worker_interned.iter().sum()
    };

    // ---- timed rows ----
    let mut rows = Vec::new();
    let engine = || ShardLocalEngine::new(program.clone()).with_shards(SHARDS);
    // cold: canonical seeding from an empty table (first-run shape)
    rows.push(run_series("b16_shardlocal_cold_deep10k", 3, || {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        par_seed_subclass_facts(&par_exec, deep.graph(), &mut atoms, &mut fb);
        let stats = engine().run(&par_exec, &mut atoms, &mut fb).unwrap();
        stats.derived as u64
    }));
    // warm: the OnionSystem steady state — compare against
    // b12_parallel_saturation_deep10k, same tier, same threads
    let mut warm = AtomTable::new();
    {
        let mut fb = FactBase::new();
        seed_subclass_facts(&deep, &mut warm, &mut fb);
    }
    rows.push(run_series("b16_shardlocal_warm_deep10k", 3, || {
        let mut fb = FactBase::new();
        par_seed_subclass_facts(&par_exec, deep.graph(), &mut warm, &mut fb);
        let stats = engine().run(&par_exec, &mut warm, &mut fb).unwrap();
        stats.derived as u64
    }));
    // the generator path: worker-local seeding + partitioned run —
    // the canonical table is touched once, at the fixpoint fold
    rows.push(run_series("b16_shardlocal_partseed_deep10k", 3, || {
        let mut sfb = ShardedFactBase::new(SHARDS);
        par_seed_subclass_partitions(&par_exec, deep.graph(), &mut sfb);
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let stats = engine().run_partitioned(&par_exec, &mut sfb, &mut atoms, &mut fb).unwrap();
        stats.derived as u64
    }));

    B16Report {
        classes: deep.term_count(),
        seeded,
        derived: seq_stats.derived,
        rounds: seq_stats.iterations,
        barrier_merge_facts,
        max_owner_merge_facts,
        local_interned,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b16_gate_holds_on_a_small_tier() {
        // same assertions, toy size, so the suite stays fast
        let deep = deep_chain_ontology("t", 8, 6);
        let program = HornProgram::standard(&RelationRegistry::onion_default());
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        seed_subclass_facts(&deep, &mut atoms, &mut fb);
        let seq = InferenceEngine::new(program.clone()).run(&mut atoms, &mut fb).unwrap();
        let sum = fact_set_checksum(&atoms, &fb);
        let exec = Executor::new(2);
        for shards in [1usize, 4] {
            let mut a = AtomTable::new();
            let mut f = FactBase::new();
            par_seed_subclass_facts(&exec, deep.graph(), &mut a, &mut f);
            let stats = ShardLocalEngine::new(program.clone())
                .with_shards(shards)
                .run(&exec, &mut a, &mut f)
                .unwrap();
            assert_eq!(stats.derived, seq.derived);
            assert_eq!(fact_set_checksum(&a, &f), sum);
            assert_eq!(stats.worker_merge_facts.len(), shards);
        }
    }
}
