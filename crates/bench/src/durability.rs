//! B13 — durability: WAL append throughput, checkpoint latency vs
//! dirty-shard fraction, recovery time vs WAL length.
//!
//! Three series on the durability stack introduced with the WAL
//! refactor, all with their correctness contracts asserted inside the
//! timed loop (mirroring B10/B11: "fast because it skipped work" is a
//! failure, not a result):
//!
//! * **append** — group-flushing a 1 000-op committed batch
//!   (`Begin … Commit`, one `write` + `sync_data`); the checksum is
//!   the final LSN, so a run that dropped records cannot pass;
//! * **checkpoint** — shard-incremental checkpoints of the 10k/50k
//!   tier frozen at 64 shards, with `k ∈ {1, 16, 64}` shards dirtied
//!   per round via the B11 content-neutral self-loop probe; each round
//!   asserts the checkpoint rewrote **exactly** `k` shards and reused
//!   the other `64 − k`;
//! * **recover** — `Durability::open` of a WAL-only directory (no
//!   checkpoint to shortcut through) at 1 000 and 8 000 logged ops;
//!   each open asserts the replayed op count.

use onion_core::graph::wal::Durability;
use onion_core::graph::{GraphOp, OntGraph, ShardedSnapshot};
use onion_core::testkit::fs::TempDir;
use onion_core::testkit::generate_graph;

use crate::hotpaths::{run_series, tier, BenchResult};

/// Shard count the checkpoint series freezes the tier at (same as B11).
pub const B13_SHARDS: usize = 64;

/// Ops per appended batch in the WAL-append series.
pub const B13_BATCH_OPS: usize = 1_000;

/// The full B13 record.
#[derive(Debug, Clone)]
pub struct B13Report {
    /// Tier node count (checkpoint series).
    pub nodes: usize,
    /// Tier edge count (checkpoint series).
    pub edges: usize,
    /// Shard count of the checkpointed view.
    pub shards: usize,
    /// Timed repetitions per row.
    pub reps: usize,
    /// One row per series; names are stable JSON keys.
    pub rows: Vec<BenchResult>,
}

/// A deterministic op stream: distinct `EdgeAdd` triples over a bounded
/// label universe (realistic interner pressure, no tombstone buildup).
fn op_stream(n: usize) -> Vec<GraphOp> {
    (0..n)
        .map(|i| GraphOp::EdgeAdd {
            edges: vec![(
                format!("n{}", i % 500),
                format!("r{}", i % 7),
                format!("n{}", (i * 7 + 1) % 500),
            )],
        })
        .collect()
}

/// WAL-append series: one committed 1 000-op batch per repetition.
fn append_row(reps: usize) -> BenchResult {
    let td = TempDir::new("b13-append");
    let mut dur = Durability::create(td.path(), "b13", true).expect("fresh dir");
    let ops = op_stream(B13_BATCH_OPS);
    run_series("b13_wal_append_1k_ops", reps, || {
        dur.log_batch(&ops);
        dur.flush().expect("flush").0
    })
}

/// Checkpoint series: tier graph at 64 shards, `k` shards dirtied per
/// round, exact rewrite accounting asserted every checkpoint.
fn checkpoint_rows(dirty_counts: &[usize], reps: usize) -> Vec<BenchResult> {
    let td = TempDir::new("b13-ckpt");
    let mut g = generate_graph(&tier());
    g.set_shard_count(B13_SHARDS);
    let mut probe = Vec::with_capacity(B13_SHARDS);
    let mut seen = vec![false; B13_SHARDS];
    for n in g.node_ids() {
        let s = g.shard_of(n);
        if !seen[s] {
            seen[s] = true;
            probe.push(n);
        }
    }
    assert_eq!(probe.len(), B13_SHARDS, "tier fills 64 shards");
    let mut dur = Durability::create(td.path(), g.name(), true).expect("fresh dir");
    let full = dur.checkpoint(&ShardedSnapshot::of(&g), dur.last_lsn()).expect("first checkpoint");
    assert_eq!((full.shards_written, full.shards_reused), (B13_SHARDS, 0));
    dirty_counts
        .iter()
        .map(|&k| {
            let k = k.min(B13_SHARDS);
            let name: &'static str = match k {
                1 => "b13_checkpoint_dirty_1_of_64",
                16 => "b13_checkpoint_dirty_16_of_64",
                _ => "b13_checkpoint_dirty_64_of_64",
            };
            run_series(name, reps, || {
                // Content-neutral dirtying (B11's probe): bumps the
                // shard version without changing what gets serialized.
                for &n in &probe[..k] {
                    let e = g.add_edge(n, "b13dirty", n).expect("probe node is live");
                    g.delete_edge(e).expect("just added");
                }
                let t = ShardedSnapshot::of(&g);
                let stats = dur.checkpoint(&t, dur.last_lsn()).expect("checkpoint");
                assert_eq!(
                    (stats.shards_written, stats.shards_reused),
                    (k, B13_SHARDS - k),
                    "checkpoint must rewrite exactly the dirty shards"
                );
                stats.seq
            })
        })
        .collect()
}

/// Recovery series: open a WAL-only directory of `n` logged ops.
fn recover_row(name: &'static str, n: usize, reps: usize) -> BenchResult {
    let td = TempDir::new("b13-recover");
    let logged = {
        let mut dur = Durability::create(td.path(), "b13", true).expect("fresh dir");
        let mut g = OntGraph::new("b13");
        g.enable_journal();
        for op in op_stream(n) {
            op.apply(&mut g).expect("stream ops apply");
        }
        // The journal holds the *effective* ops: NodeAdds for first
        // sightings, EdgeAdds minus the duplicates `ensure` dropped.
        let journal = g.drain_journal();
        for chunk in journal.chunks(100) {
            dur.log_batch(chunk);
        }
        dur.flush().expect("flush");
        journal.len()
    };
    let want_edges = {
        let (g, _, stats) = Durability::open(td.path()).expect("reopen");
        assert_eq!(stats.replayed_ops, logged, "all logged ops replay");
        g.edge_count()
    };
    run_series(name, reps, || {
        let (g, _, _) = Durability::open(td.path()).expect("reopen");
        assert_eq!(g.edge_count(), want_edges, "recovery must rebuild the full graph");
        g.edge_count() as u64
    })
}

/// Runs B13 at the standard sizes (5 repetitions per row).
pub fn run_b13() -> B13Report {
    run_b13_sized(&[1, 16, 64], &[1_000, 8_000], 5)
}

/// Parameterised B13 (smaller rows/reps for tests).
pub fn run_b13_sized(dirty_counts: &[usize], wal_lengths: &[usize], reps: usize) -> B13Report {
    let spec = tier();
    let reps = reps.max(1);
    let mut rows = vec![append_row(reps)];
    rows.extend(checkpoint_rows(dirty_counts, reps));
    for &n in wal_lengths {
        let name: &'static str =
            if n <= 1_000 { "b13_recover_wal_1k_ops" } else { "b13_recover_wal_8k_ops" };
        rows.push(recover_row(name, n, reps));
    }
    B13Report { nodes: spec.nodes, edges: spec.edges, shards: B13_SHARDS, reps, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b13_accounting_holds_on_a_quick_run() {
        // the asserts inside the series are the real test: dropped WAL
        // records, inexact checkpoint accounting, or lossy recovery
        // all panic
        let report = run_b13_sized(&[1, 64], &[200], 1);
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().all(|r| r.median_us > 0.0));
    }
}
