//! Graph hot-path microbenchmarks on the testkit 10k-node / 50k-edge
//! tier — the closure+traversal counterpart of B4/B6, introduced with
//! the label-indexed adjacency layer (PR 2) so every future PR has a
//! machine-readable perf trajectory to compare against.
//!
//! The same set backs the `b9_graph_hotpaths` bench target and the
//! `experiments --json` smoke mode that emits `BENCH_onion.json`.

use std::time::Instant;

use onion_core::graph::closure::{descendants, transitive_pairs};
use onion_core::graph::rel;
use onion_core::graph::traverse::{bfs, reachable, Direction, EdgeFilter};
use onion_core::graph::{NodeId, OntGraph};
use onion_core::testkit::{generate_graph, GraphSpec};

/// One measured hot path.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable bench name (the JSON key).
    pub name: &'static str,
    /// Median wall time over `reps` runs, in microseconds.
    pub median_us: f64,
    /// Fastest repetition, µs.
    pub min_us: f64,
    /// Slowest repetition, µs.
    pub max_us: f64,
    /// Number of timed repetitions.
    pub reps: usize,
    /// A checksum of the routine's output, so the work cannot be
    /// optimised away and the id-path refactor can be diffed for
    /// behavioural drift between runs.
    pub checksum: u64,
}

impl BenchResult {
    /// Run-to-run spread: slowest over fastest repetition. The
    /// `--compare` regression thresholds are calibrated against the
    /// spreads recorded in the committed baseline (see `experiments`).
    pub fn spread(&self) -> f64 {
        if self.min_us > 0.0 {
            self.max_us / self.min_us
        } else {
            1.0
        }
    }
}

/// Times `reps` runs of `f` (whose `u64` result is black-boxed as the
/// checksum) into one [`BenchResult`] row — the single series-timing
/// helper shared by the hot-path set and B12.
pub(crate) fn run_series(
    name: &'static str,
    reps: usize,
    mut f: impl FnMut() -> u64,
) -> BenchResult {
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    let mut checksum = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        checksum = std::hint::black_box(f());
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    BenchResult {
        name,
        median_us: samples[samples.len() / 2],
        min_us: samples[0],
        max_us: samples[samples.len() - 1],
        reps,
        checksum,
    }
}

/// The standard tier every result in `BENCH_onion.json` is measured on.
pub fn tier() -> GraphSpec {
    GraphSpec::tier_10k()
}

/// Prebuilt workload: the tier graph plus the probe inputs each routine
/// needs, so benches time the hot path and not the setup.
pub struct Fixture {
    /// The tier graph.
    pub g: OntGraph,
    root: NodeId,
    all_nodes: Vec<NodeId>,
    triples: Vec<(NodeId, String, NodeId)>,
    verb_filter: EdgeFilter,
}

impl Fixture {
    /// Generates the workload for `spec`.
    pub fn new(spec: &GraphSpec) -> Self {
        let g = generate_graph(spec);
        let root = g.node_by_label("C0").expect("root exists");
        let all_nodes = g.node_ids().collect();
        let triples = g.edges().map(|e| (e.src, e.label.to_string(), e.dst)).collect();
        let verb_filter =
            EdgeFilter::Labels((0..spec.verb_labels).map(|i| format!("verb{i}")).collect());
        Fixture { g, root, all_nodes, triples, verb_filter }
    }

    /// B6-style per-label closure: every SubclassOf-reachable pair.
    pub fn transitive_pairs_subclass(&self) -> u64 {
        transitive_pairs(&self.g, &EdgeFilter::label(rel::SUBCLASS_OF)).len() as u64
    }

    /// Per-label neighbour iteration over every node (the out_neighbors
    /// hot loop of closure::follow and the reformulator).
    pub fn out_neighbors_subclass_sweep(&self) -> u64 {
        self.all_nodes
            .iter()
            .map(|&n| self.g.out_neighbors(n, rel::SUBCLASS_OF).count() as u64)
            .sum()
    }

    /// Whole-hierarchy descendants from the root (closure::follow).
    pub fn descendants_root(&self) -> u64 {
        descendants(&self.g, self.root, rel::SUBCLASS_OF).len() as u64
    }

    /// Label-filtered BFS against the edge direction (viewer/difference
    /// shape).
    pub fn bfs_backward_subclass(&self) -> u64 {
        bfs(&self.g, self.root, Direction::Backward, &EdgeFilter::label(rel::SUBCLASS_OF)).len()
            as u64
    }

    /// Multi-label filtered reachability over the dense verb edges.
    pub fn reachable_verbs(&self) -> u64 {
        reachable(&self.g, self.root, Direction::Forward, &self.verb_filter).len() as u64
    }

    /// B4-style point lookups: one find_edge probe per live triple.
    pub fn find_edge_all_triples(&self) -> u64 {
        self.triples.iter().filter(|(s, l, d)| self.g.find_edge(*s, l, *d).is_some()).count() as u64
    }
}

/// The hot-path set as `(name, reps, routine)` rows, shared by
/// `run_all` and the `b9_graph_hotpaths` bench target.
pub fn routines(fx: &Fixture) -> Vec<(&'static str, usize, Box<dyn Fn() -> u64 + '_>)> {
    vec![
        ("transitive_pairs_subclass", 5, Box::new(|| fx.transitive_pairs_subclass())),
        ("out_neighbors_subclass_sweep", 7, Box::new(|| fx.out_neighbors_subclass_sweep())),
        ("descendants_root", 7, Box::new(|| fx.descendants_root())),
        ("bfs_backward_subclass", 7, Box::new(|| fx.bfs_backward_subclass())),
        ("reachable_verbs", 5, Box::new(|| fx.reachable_verbs())),
        ("find_edge_all_triples", 7, Box::new(|| fx.find_edge_all_triples())),
    ]
}

/// Runs the full hot-path set on the 10k tier and returns the series.
pub fn run_all() -> Vec<BenchResult> {
    let fx = Fixture::new(&tier());
    routines(&fx).into_iter().map(|(name, reps, f)| run_series(name, reps, || f())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpaths_run_on_a_small_tier() {
        // run the same routines on a toy graph so the suite stays fast
        let fx = Fixture::new(&GraphSpec::sized(3, 120, 600));
        assert!(fx.transitive_pairs_subclass() > 0);
        assert_eq!(fx.descendants_root(), 119);
        assert_eq!(fx.bfs_backward_subclass(), 120, "root reaches all via in-edges");
        assert_eq!(fx.find_edge_all_triples(), fx.g.edge_count() as u64);
        // every routine is wired into the shared table
        assert_eq!(routines(&fx).len(), 6);
    }
}
