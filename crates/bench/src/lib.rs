//! Shared scaffolding for the experiment benches (B1–B8 in DESIGN.md).
//!
//! Each bench target regenerates one experiment's series; the
//! `experiments` binary (`cargo run -p onion-bench --release --bin
//! experiments`) prints the full set of tables recorded in
//! EXPERIMENTS.md.

use onion_core::prelude::*;
use onion_core::testkit::{overlap_pair, OverlapPair, OverlapSpec};

pub mod cache;
pub mod durability;
pub mod hotpaths;
pub mod inference;
pub mod observability;
pub mod parallel;
pub mod publish;
pub mod shardlocal;

/// Median wall time (µs) of `reps` runs of `f` — the one in-process
/// timing helper shared by the experiment tables, the B10 runner, and
/// the `experiments` binary.
pub fn median_micros(reps: usize, mut f: impl FnMut()) -> f64 {
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Builds the standard experiment pair: `concepts` total concepts,
/// `overlap` shared fraction, half of the shared concepts renamed.
pub fn pair(seed: u64, concepts: usize, overlap: f64) -> OverlapPair {
    overlap_pair(&OverlapSpec { seed, concepts, overlap, rename_prob: 0.5, max_children: 5 })
}

/// Rule set bridging every planted truth pair (the confirmed
/// articulation for a generated pair).
pub fn truth_rules(pair: &OverlapPair) -> RuleSet {
    let mut rs = RuleSet::new();
    for (l, r) in &pair.truth {
        let (lo, ln) = l.split_once('.').expect("qualified");
        let (ro, rn) = r.split_once('.').expect("qualified");
        rs.push(ArticulationRule::term_implies(Term::qualified(lo, ln), Term::qualified(ro, rn)));
    }
    rs
}

/// Generates the articulation for a pair from its planted truth.
pub fn articulated(pair: &OverlapPair) -> Articulation {
    ArticulationGenerator::new()
        .generate(&truth_rules(pair), &[&pair.left, &pair.right])
        .expect("truth rules generate")
}

/// Populates one knowledge base per side with `n` instances spread over
/// the source's classes, each carrying a numeric `Price`.
pub fn instance_kbs(p: &OverlapPair, n: usize) -> (KnowledgeBase, KnowledgeBase) {
    let mut left = KnowledgeBase::new("left");
    let mut right = KnowledgeBase::new("right");
    for (kb, onto) in [(&mut left, &p.left), (&mut right, &p.right)] {
        let classes: Vec<String> = onto.graph().nodes().map(|x| x.label.to_string()).collect();
        for i in 0..n {
            let class = &classes[i % classes.len()];
            let id = format!("{}_{i}", kb.name());
            kb.add(Instance::new(&id, class).with("Price", Value::Num(((i * 37) % 50_000) as f64)));
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaffolding_builds() {
        let p = pair(1, 60, 0.25);
        let art = articulated(&p);
        assert_eq!(art.rules.len(), p.truth.len());
        let (l, r) = instance_kbs(&p, 50);
        assert_eq!(l.len(), 50);
        assert_eq!(r.len(), 50);
    }
}
