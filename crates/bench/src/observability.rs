//! B14 — observability overhead, enabled vs disabled.
//!
//! The `onion-obs` cost contract says an instrumented hot path pays
//! one relaxed atomic load per site while recording is disabled and a
//! striped relaxed `fetch_add` while it is enabled. B14 measures both
//! steady states on three workloads that hit the instrumented layers:
//!
//! * **publish** — 50 one-dirty-shard publish rounds on the B11
//!   fixture (span + counters + per-shard rebuild timing per round);
//! * **infer** — semi-naive saturation of a transitivity chain
//!   (per-run counters + a per-round delta histogram);
//! * **count burst** — one million bare `count!` + `observe_us!`
//!   macro hits, the microbenchmark of the macro fast path itself.
//!
//! Each workload is run with recording disabled and enabled; the row
//! pairs land in `BENCH_onion.json` so the disabled-path overhead
//! stays on the record. The inference workload asserts its derivation
//! count in both modes — instrumentation must be strictly
//! observational.

use onion_core::obs;
use onion_core::rules::{AtomTable, FactBase, HornProgram, InferenceEngine};

use crate::publish::B11Fixture;

/// Chain length for the inference workload (`derived = n(n-1)/2`).
pub const B14_CHAIN: usize = 128;
/// Publish rounds per timed repetition.
pub const B14_PUBLISH_ROUNDS: usize = 50;
/// Macro hits per count-burst repetition.
pub const B14_BURST: usize = 1_000_000;

/// The B11 publish fixture wrapped for repeated one-dirty-shard
/// rounds.
pub struct B14Fixture(B11Fixture);

impl Default for B14Fixture {
    fn default() -> Self {
        Self::new()
    }
}

impl B14Fixture {
    /// Builds the tier fixture (10k nodes / 50k edges, 64 shards).
    pub fn new() -> Self {
        B14Fixture(B11Fixture::new())
    }

    /// Runs `rounds` dirty-one-shard-then-publish cycles, asserting
    /// each publish rebuilt exactly one shard.
    pub fn publish_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.0.publish_dirty(1);
        }
    }
}

/// Builds a fixture and runs [`B14Fixture::publish_rounds`] — bench
/// targets should hold their own fixture and call it directly.
pub fn publish_loop(rounds: usize) {
    B14Fixture::new().publish_rounds(rounds);
}

/// Saturates `p(X,Z) :- p(X,Y), p(Y,Z)` on an `n`-node chain with the
/// sequential semi-naive engine; returns (and asserts) the derivation
/// count, which must be identical whether or not recording is on.
pub fn infer_chain(n: usize) -> usize {
    let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").expect("fixed program");
    let mut atoms = AtomTable::new();
    let mut fb = FactBase::new();
    for i in 0..n {
        fb.add(&mut atoms, "p", &[&format!("n{i}"), &format!("n{}", i + 1)]);
    }
    let stats = InferenceEngine::new(program).run(&mut atoms, &mut fb).expect("no budget");
    assert_eq!(stats.derived, n * (n - 1) / 2, "instrumentation must not change inference");
    stats.derived
}

/// `n` hits of the `count!` + `observe_us!` macro pair — the raw
/// per-site cost in whichever recording state is active.
pub fn count_burst(n: usize) {
    for i in 0..n as u64 {
        obs::count!("onion_b14_burst_total");
        obs::observe_us!("onion_b14_burst_us", i & 1023);
    }
}

/// One measured B14 series.
#[derive(Debug, Clone)]
pub struct B14Row {
    /// Series name (`b14_<workload>_<disabled|enabled>`).
    pub name: String,
    /// Median wall time over the repetitions, µs.
    pub median_us: f64,
    /// Fastest repetition, µs.
    pub min_us: f64,
    /// Slowest repetition, µs.
    pub max_us: f64,
    /// Timed repetitions.
    pub reps: usize,
}

/// The full B14 record: disabled/enabled row pairs per workload.
#[derive(Debug, Clone)]
pub struct B14Report {
    /// All rows, disabled before enabled per workload.
    pub rows: Vec<B14Row>,
}

impl B14Report {
    /// `enabled_median / disabled_median` for `workload` — the
    /// recording overhead factor (1.0 = free).
    pub fn overhead(&self, workload: &str) -> f64 {
        let m = |suffix: &str| {
            self.rows
                .iter()
                .find(|r| r.name == format!("b14_{workload}_{suffix}"))
                .map(|r| r.median_us)
        };
        match (m("disabled"), m("enabled")) {
            (Some(d), Some(e)) if d > 0.0 => e / d,
            _ => f64::NAN,
        }
    }
}

fn timed(name: &str, reps: usize, mut f: impl FnMut()) -> B14Row {
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    B14Row {
        name: name.to_string(),
        median_us: samples[samples.len() / 2],
        min_us: samples[0],
        max_us: *samples.last().expect("non-empty"),
        reps,
    }
}

/// Runs B14 with `reps` repetitions per row, restoring the recording
/// state it found.
pub fn run_b14(reps: usize) -> B14Report {
    let was_enabled = obs::enabled();
    let mut fixture = B14Fixture::new();
    let mut rows = Vec::new();
    for enabled in [false, true] {
        obs::set_enabled(enabled);
        let suffix = if enabled { "enabled" } else { "disabled" };
        rows.push(timed(&format!("b14_publish_{suffix}"), reps, || {
            fixture.publish_rounds(B14_PUBLISH_ROUNDS)
        }));
        rows.push(timed(&format!("b14_infer_{suffix}"), reps, || {
            infer_chain(B14_CHAIN);
        }));
        rows.push(timed(&format!("b14_count_burst_{suffix}"), reps, || count_burst(B14_BURST)));
    }
    obs::set_enabled(was_enabled);
    // disabled rows first, enabled second, workload order preserved
    rows.sort_by_key(|r| r.name.ends_with("_enabled"));
    B14Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_chain_counts_are_mode_independent() {
        let was = obs::enabled();
        obs::set_enabled(false);
        let off = infer_chain(24);
        obs::set_enabled(true);
        let on = infer_chain(24);
        obs::set_enabled(was);
        assert_eq!(off, on);
        assert_eq!(off, 24 * 23 / 2);
    }

    #[test]
    fn run_b14_produces_paired_rows() {
        let report = run_b14(1);
        assert_eq!(report.rows.len(), 6);
        assert!(report.rows[..3].iter().all(|r| r.name.ends_with("_disabled")));
        assert!(report.rows[3..].iter().all(|r| r.name.ends_with("_enabled")));
        let oh = report.overhead("count_burst");
        assert!(oh.is_finite() && oh > 0.0);
    }
}
