//! [`OnionSystem`]: the assembled architecture of the paper's Fig. 1.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::{Arc, Mutex};

use onion_articulate::{
    Articulation, ArticulationEngine, ArticulationGenerator, EngineConfig, EngineReport, Expert,
    GeneratorConfig, MatcherPipeline,
};
use onion_exec::{CacheKey, CacheStats, ResultCache};
use onion_graph::wal::{CheckpointStats, Durability, Lsn, RecoveryStats, WalError};
use onion_graph::{GraphOp, OntGraph, PublishStats, ShardedSnapshot, SnapshotStore};
use onion_lexicon::Lexicon;
use onion_ontology::Ontology;
use onion_query::{InMemoryWrapper, KnowledgeBase, Query, ResultSet, Value, Wrapper};
use onion_rules::{parse_rules, AtomTable, ConversionRegistry, RuleSet};

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum SystemError {
    /// Named ontology is not loaded.
    UnknownSource(String),
    /// No articulation generated yet.
    NotArticulated,
    /// Rule text failed to parse.
    Rules(onion_rules::RuleError),
    /// Articulation failed.
    Articulate(onion_articulate::ArticulateError),
    /// Algebra failed.
    Algebra(onion_algebra::AlgebraError),
    /// Query failed.
    Query(onion_query::QueryError),
    /// WAL / checkpoint / recovery failed.
    Durability(WalError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::UnknownSource(s) => write!(f, "unknown source ontology {s:?}"),
            SystemError::NotArticulated => write!(f, "no articulation generated yet"),
            SystemError::Rules(e) => write!(f, "{e}"),
            SystemError::Articulate(e) => write!(f, "{e}"),
            SystemError::Algebra(e) => write!(f, "{e}"),
            SystemError::Query(e) => write!(f, "{e}"),
            SystemError::Durability(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SystemError {}

/// Result alias for the facade.
pub type Result<T> = std::result::Result<T, SystemError>;

/// Scope component of the facade's query-cache keys. The cache is
/// per-system and the state epoch is per-system too, so a constant
/// scope suffices; it exists so a future shared/multi-tenant cache can
/// partition by system identity without a key-schema change.
const CACHE_SCOPE: &str = "onion-system";

/// Byte estimate of a cached [`ResultSet`] (rows, strings, attribute
/// maps) for the cache's memory accounting.
fn result_weight(rs: &ResultSet) -> usize {
    let mut bytes = std::mem::size_of::<ResultSet>();
    for row in &rs.rows {
        bytes += std::mem::size_of_val(row);
        bytes += row.id.len() + row.source.len() + row.local_class.len();
        for (k, v) in &row.attrs {
            bytes += k.len() + std::mem::size_of_val(v);
            if let Value::Str(s) = v {
                bytes += s.len();
            }
        }
    }
    bytes
}

/// The assembled ONION system: data layer + articulation engine +
/// algebra + query system (paper Fig. 1).
pub struct OnionSystem {
    lexicon: Lexicon,
    conversions: ConversionRegistry,
    sources: BTreeMap<String, Ontology>,
    kbs: BTreeMap<String, InMemoryWrapper>,
    rules: RuleSet,
    articulation: Option<Articulation>,
    engine_config: EngineConfig,
    /// Snapshot shard count applied to every loaded source graph;
    /// `0` (the default) means adaptive ≈√E sizing per graph.
    shard_count: usize,
    /// Per-source snapshot stores, created on first publish. Readers
    /// load from these mutex-free; publishes are incremental
    /// (dirty shards only).
    stores: BTreeMap<String, SnapshotStore>,
    /// The system-wide atom table backing inference runs. Shared into
    /// every generator the facade builds, so interned symbols and
    /// per-graph label memos persist across articulation and
    /// maintenance cycles.
    atoms: Arc<Mutex<AtomTable>>,
    /// Executor for shard-parallel inference expansion; `None` (the
    /// default) keeps expansion sequential. Threaded into every
    /// generator the facade builds.
    inference_executor: Option<Arc<onion_exec::Executor>>,
    /// Per-source durability handles ([`OnionSystem::open_durable`]).
    /// A durable source's journal is drained into its WAL (and
    /// group-flushed) at every publish, so the in-memory journal only
    /// ever holds the unflushed tail.
    durables: BTreeMap<String, DurableSource>,
    /// Monotonic facade **state epoch**: bumped by every mutation that
    /// can change a query's answer (sources, KBs, rules, conversions,
    /// articulation, publishes). Part of every query-cache key, so a
    /// bump makes all cached results unaddressable — stale reads are
    /// structurally impossible, no explicit invalidation path exists.
    state_epoch: u64,
    /// Optional hot-result cache ([`OnionSystem::set_query_cache`]).
    /// `None` (the default) keeps the serving path allocation-free.
    query_cache: Option<ResultCache<ResultSet>>,
}

/// Durable state attached to one source.
struct DurableSource {
    dur: Durability,
    /// Commit LSN covering everything included in the latest publish —
    /// the `last_lsn` the next checkpoint records.
    publish_lsn: Lsn,
}

/// What [`OnionSystem::open_durable`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOpen {
    /// True when the source was recovered from existing durable state;
    /// false when the loaded source bootstrapped a fresh directory.
    pub recovered: bool,
    /// Recovery accounting (recovered case).
    pub recovery: Option<RecoveryStats>,
    /// The initial full checkpoint (bootstrap case).
    pub checkpoint: Option<CheckpointStats>,
}

impl OnionSystem {
    /// System with an explicit lexicon.
    pub fn new(lexicon: Lexicon) -> Self {
        OnionSystem {
            lexicon,
            conversions: ConversionRegistry::standard(),
            sources: BTreeMap::new(),
            kbs: BTreeMap::new(),
            rules: RuleSet::new(),
            articulation: None,
            engine_config: EngineConfig::default(),
            shard_count: 0,
            stores: BTreeMap::new(),
            atoms: Arc::new(Mutex::new(AtomTable::new())),
            inference_executor: None,
            durables: BTreeMap::new(),
            state_epoch: 0,
            query_cache: None,
        }
    }

    /// Records that query-visible state changed: bumps the state epoch,
    /// which retires every cached query result at once.
    fn touch(&mut self) {
        self.state_epoch += 1;
    }

    /// System with the built-in transportation lexicon (the Fig. 2
    /// domain).
    pub fn with_transport_lexicon() -> Self {
        Self::new(onion_lexicon::builtin::transport_lexicon())
    }

    /// Replaces the engine configuration (articulation namespace,
    /// rounds, inference expansion …).
    pub fn set_engine_config(&mut self, config: EngineConfig) {
        self.engine_config = config;
    }

    /// Replaces the conversion registry.
    pub fn set_conversions(&mut self, conversions: ConversionRegistry) {
        self.conversions = conversions;
        self.touch();
    }

    // ------------------------------------------------------------------
    // data layer
    // ------------------------------------------------------------------

    /// Loads a source ontology (its graph adopts the system's snapshot
    /// shard count).
    pub fn add_source(&mut self, mut ontology: Ontology) {
        ontology.graph_mut().set_shard_count(self.shard_count);
        self.sources.insert(ontology.name().to_string(), ontology);
        self.touch();
    }

    /// Loads instance data for a source.
    pub fn add_knowledge_base(&mut self, kb: KnowledgeBase) {
        self.kbs.insert(kb.name().to_string(), InMemoryWrapper::new(kb));
        self.touch();
    }

    /// Loaded source names.
    pub fn sources(&self) -> Vec<&str> {
        self.sources.keys().map(String::as_str).collect()
    }

    /// A loaded source by name.
    pub fn source(&self, name: &str) -> Option<&Ontology> {
        self.sources.get(name)
    }

    /// Mutable access to a loaded source (to apply updates). Handing
    /// the handle out counts as an edit for cache purposes: the state
    /// epoch is bumped, so no stale cached result can survive whatever
    /// the caller does with it.
    pub fn source_mut(&mut self, name: &str) -> Option<&mut Ontology> {
        if self.sources.contains_key(name) {
            self.touch();
        }
        self.sources.get_mut(name)
    }

    // ------------------------------------------------------------------
    // snapshots: shard configuration + incremental publish
    // ------------------------------------------------------------------

    /// The configured snapshot shard count: `0` means adaptive (each
    /// graph is sized ≈√E by [`onion_graph::adaptive_shard_count`]),
    /// any other value is applied to every loaded source graph.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Reconfigures the snapshot shard count for every loaded source
    /// graph and for sources loaded later. `0` selects adaptive ≈√E
    /// sizing per graph (the default); explicit counts pin the layout.
    /// Published snapshots keep serving their old layout until the next
    /// [`OnionSystem::publish_source`], which does a full rebuild.
    pub fn set_shard_count(&mut self, count: usize) {
        self.shard_count = count;
        for ontology in self.sources.values_mut() {
            ontology.graph_mut().set_shard_count(count);
        }
    }

    /// Publishes the current state of a source's graph into its
    /// snapshot store, creating the store on first use. The publish is
    /// **incremental**: only shards dirtied since the previous publish
    /// are rebuilt (see [`PublishStats`]); the rest are shared
    /// structurally with the previous epoch.
    ///
    /// With the adaptive shard policy (no explicit
    /// [`OnionSystem::set_shard_count`]), the first publish of a source
    /// re-derives its ≈√E layout from the edge count at that moment, so
    /// a graph grown substantially between load and first publish still
    /// gets a right-sized layout; later publishes keep it stable to
    /// preserve incremental rebuilds.
    /// For a durable source ([`OnionSystem::open_durable`]), every
    /// publish first drains the journal tail into the WAL as one
    /// committed batch and group-flushes it — write-ahead of the
    /// snapshot becoming visible, so the published state is always a
    /// recoverable cut.
    pub fn publish_source(&mut self, name: &str) -> Result<(Arc<ShardedSnapshot>, PublishStats)> {
        let flushed = self.flush_durable(name)?;
        if self.shard_count == 0 && !self.stores.contains_key(name) {
            let ontology = self
                .sources
                .get_mut(name)
                .ok_or_else(|| SystemError::UnknownSource(name.to_string()))?;
            ontology.graph_mut().set_shard_count(0);
        }
        let ontology =
            self.sources.get(name).ok_or_else(|| SystemError::UnknownSource(name.to_string()))?;
        let g = ontology.graph();
        let store = self.stores.entry(name.to_string()).or_insert_with(|| SnapshotStore::new(g));
        let out = store.publish_stats(g);
        if let Some(lsn) = flushed {
            self.durables.get_mut(name).expect("flushed implies durable").publish_lsn = lsn;
        }
        self.touch();
        Ok(out)
    }

    /// The latest published snapshot of a source — a mutex-free load;
    /// `None` until the first [`OnionSystem::publish_source`]. Safe to
    /// call from any thread while another publishes.
    pub fn source_snapshot(&self, name: &str) -> Option<Arc<ShardedSnapshot>> {
        self.stores.get(name).map(SnapshotStore::load)
    }

    /// The monotonic publish epoch of a source's snapshot store —
    /// strictly increasing with every [`OnionSystem::publish_source`],
    /// so any artifact derived from a snapshot can be validated with
    /// one integer compare (`None` until the first publish). The same
    /// value is on the snapshot itself via
    /// [`ShardedSnapshot::epoch`](onion_graph::ShardedSnapshot::epoch).
    pub fn source_epoch(&self, name: &str) -> Option<u64> {
        self.stores.get(name).map(SnapshotStore::epoch)
    }

    // ------------------------------------------------------------------
    // query cache
    // ------------------------------------------------------------------

    /// The facade-level state epoch: monotonic, bumped by every
    /// mutation that can change a query's answer (loading sources or
    /// KBs, rules, conversions, articulation, `source_mut` access,
    /// publishes). This is the epoch component of every query-cache
    /// key, so comparing two readings tells whether cached results
    /// from the first reading are still servable.
    pub fn query_epoch(&self) -> u64 {
        self.state_epoch
    }

    /// Enables the hot-result query cache, bounded at `capacity`
    /// entries (`0` disables and drops it). Cached entries are keyed by
    /// `(scope, state epoch, canonical query text)`; any mutation bumps
    /// the epoch and thereby retires every cached result — a stale hit
    /// after an edit is structurally impossible. Cache-served results
    /// are byte-identical to re-execution (the stored value *is* the
    /// executed `ResultSet`, shared by `Arc`).
    pub fn set_query_cache(&mut self, capacity: usize) {
        self.query_cache = if capacity == 0 { None } else { Some(ResultCache::new(capacity)) };
    }

    /// The cache's counters (hits, misses, insertions, evictions, live
    /// entries / bytes), or `None` while the cache is disabled. The
    /// same counts flow into the `onion_query_cache_*` series of
    /// [`OnionSystem::metrics_snapshot`] when observability is on.
    pub fn query_cache_stats(&self) -> Option<CacheStats> {
        self.query_cache.as_ref().map(ResultCache::stats)
    }

    // ------------------------------------------------------------------
    // observability
    // ------------------------------------------------------------------

    /// Turns observability recording on or off (process-wide; recording
    /// is off by default and every instrumented hot path then costs one
    /// relaxed atomic load). Everything recorded so far stays readable
    /// through [`OnionSystem::metrics_snapshot`].
    pub fn set_observability(&self, on: bool) {
        onion_obs::set_enabled(on);
    }

    /// The process-wide metrics registry every instrumented layer
    /// (publish, WAL, checkpoints, inference, query batches) records
    /// into while observability is enabled.
    pub fn metrics(&self) -> &'static onion_obs::Registry {
        onion_obs::global()
    }

    /// A point-in-time read of every recorded metric; render it with
    /// [`MetricsSnapshot::to_json`](onion_obs::MetricsSnapshot::to_json)
    /// or
    /// [`to_prometheus`](onion_obs::MetricsSnapshot::to_prometheus).
    pub fn metrics_snapshot(&self) -> onion_obs::MetricsSnapshot {
        onion_obs::global().snapshot()
    }

    // ------------------------------------------------------------------
    // durability: WAL + checkpoints + recovery
    // ------------------------------------------------------------------

    /// Attaches durable storage under `dir` to the source `name`.
    ///
    /// * If `dir` already holds durable state, the source is
    ///   **recovered** from it — newest complete checkpoint manifest,
    ///   clean shards restored, committed WAL suffix replayed — loaded
    ///   (replacing any in-memory source of the same name), and
    ///   re-published.
    /// * Otherwise the already-loaded source **bootstraps** `dir`: its
    ///   full content is logged as the first committed batch, published,
    ///   and checkpointed, so recovery works even if the first manifest
    ///   is later torn.
    ///
    /// From then on the source's journal is the unflushed WAL tail:
    /// every [`OnionSystem::publish_source`] drains and group-flushes
    /// it, and [`OnionSystem::checkpoint_source`] bounds both the
    /// journal and the WAL itself.
    ///
    /// Durable sources must be consistent ontologies (unique labels) —
    /// ops are journaled and replayed label-addressed (§3), so recovery
    /// is identity-preserving at the label level (node ids may compact).
    pub fn open_durable(&mut self, name: &str, dir: impl AsRef<Path>) -> Result<DurableOpen> {
        let dir = dir.as_ref();
        if Durability::has_state(dir) {
            let (mut g, dur, recovery) = Durability::open(dir).map_err(SystemError::Durability)?;
            if dur.name() != name {
                return Err(SystemError::Durability(WalError::Unsupported(format!(
                    "durable directory belongs to source {:?}, not {name:?}",
                    dur.name()
                ))));
            }
            g.enable_journal();
            let ontology = onion_ontology::Ontology::from_graph(g).map_err(|e| {
                SystemError::Durability(WalError::Unsupported(format!(
                    "recovered graph is not a valid ontology: {e}"
                )))
            })?;
            self.add_source(ontology);
            self.durables.insert(name.to_string(), DurableSource { dur, publish_lsn: Lsn::ZERO });
            self.publish_source(name)?;
            Ok(DurableOpen { recovered: true, recovery: Some(recovery), checkpoint: None })
        } else {
            let ontology = self.get_source(name)?;
            let g = ontology.graph();
            if !g.unique_labels() {
                return Err(SystemError::Durability(WalError::Unsupported(
                    "durable sources require consistent (unique-label) mode".into(),
                )));
            }
            // Bootstrap batch: the source's full content as ops, so the
            // WAL alone can rebuild it if the first manifest tears.
            let mut ops: Vec<GraphOp> =
                g.node_ids().map(|n| GraphOp::node_add(g.node_label(n).expect("live"))).collect();
            let triples: Vec<(String, String, String)> = g
                .edges()
                .map(|e| {
                    (
                        g.node_label(e.src).expect("live").to_string(),
                        e.label.to_string(),
                        g.node_label(e.dst).expect("live").to_string(),
                    )
                })
                .collect();
            for chunk in triples.chunks(4096) {
                ops.push(GraphOp::EdgeAdd { edges: chunk.to_vec() });
            }
            let mut dur = Durability::create(dir, name, true).map_err(SystemError::Durability)?;
            dur.log_batch(&ops);
            let lsn = dur.flush().map_err(SystemError::Durability)?;
            let graph = self.sources.get_mut(name).expect("checked above").graph_mut();
            // Any pre-durability journal is already covered by the
            // bootstrap batch; journaling starts fresh from here.
            graph.take_journal();
            graph.enable_journal();
            self.durables.insert(name.to_string(), DurableSource { dur, publish_lsn: lsn });
            self.publish_source(name)?;
            let stats = self.checkpoint_source(name)?;
            Ok(DurableOpen { recovered: false, recovery: None, checkpoint: Some(stats) })
        }
    }

    /// Flushes and checkpoints a durable source: journal tail → WAL
    /// (committed + group-flushed), incremental publish, then a
    /// **shard-incremental** checkpoint — only shards whose version
    /// stamps changed since the previous checkpoint are rewritten, and
    /// WAL segments no longer needed for recovery are retired.
    pub fn checkpoint_source(&mut self, name: &str) -> Result<CheckpointStats> {
        if !self.durables.contains_key(name) {
            return Err(SystemError::Durability(WalError::Unsupported(format!(
                "source {name:?} is not durable; call open_durable first"
            ))));
        }
        let (snap, _) = self.publish_source(name)?;
        let ds = self.durables.get_mut(name).expect("checked above");
        ds.dur.checkpoint(&snap, ds.publish_lsn).map_err(SystemError::Durability)
    }

    /// Recovers a graph from a durable directory without loading it
    /// into a system — the raw recovery entry point (inspection,
    /// tests, offline tooling). Equivalent to what
    /// [`OnionSystem::open_durable`] does internally for existing state.
    pub fn recover(dir: impl AsRef<Path>) -> Result<(OntGraph, RecoveryStats)> {
        let (g, _dur, stats) = Durability::open(dir).map_err(SystemError::Durability)?;
        Ok((g, stats))
    }

    /// The durability handle of a source, if `open_durable` attached
    /// one (observability: manifests, WAL segments, unflushed bytes).
    pub fn durable(&self, name: &str) -> Option<&Durability> {
        self.durables.get(name).map(|ds| &ds.dur)
    }

    /// Drains a durable source's journal tail into its WAL as one
    /// committed, group-flushed batch. Returns the durable LSN, or
    /// `None` when `name` isn't durable.
    fn flush_durable(&mut self, name: &str) -> Result<Option<Lsn>> {
        let Some(ds) = self.durables.get_mut(name) else {
            return Ok(None);
        };
        let ontology = self
            .sources
            .get_mut(name)
            .ok_or_else(|| SystemError::UnknownSource(name.to_string()))?;
        let ops = ontology.graph_mut().drain_journal();
        ds.dur.log_batch(&ops);
        let lsn = ds.dur.flush().map_err(SystemError::Durability)?;
        Ok(Some(lsn))
    }

    /// Adds expert articulation rules in the textual syntax.
    pub fn add_rules(&mut self, text: &str) -> Result<usize> {
        let rs = parse_rules(text).map_err(SystemError::Rules)?;
        self.touch();
        Ok(self.rules.extend_dedup(&rs))
    }

    /// The confirmed rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    // ------------------------------------------------------------------
    // articulation
    // ------------------------------------------------------------------

    fn get_source(&self, name: &str) -> Result<&Ontology> {
        self.sources.get(name).ok_or_else(|| SystemError::UnknownSource(name.to_string()))
    }

    /// A handle to the system-wide atom table (symbol interning shared
    /// by every inference run the facade triggers). Exposed for
    /// observability — e.g. asserting that repeated cycles stop
    /// interning once the vocabulary is warm.
    pub fn atom_table(&self) -> Arc<Mutex<AtomTable>> {
        Arc::clone(&self.atoms)
    }

    /// Runs inference expansion shard-local on `threads` threads
    /// (`0` = one per available CPU): each worker seeds and saturates
    /// its own fact partition with a **worker-local atom table**,
    /// exchanging per-round deltas through per-pair mailboxes, and the
    /// shared table is touched once, at fixpoint (see
    /// `onion_exec::ShardLocalEngine`). Expansion output is identical
    /// to the sequential path at every shard and thread count — this
    /// is a throughput knob, not a semantics knob.
    pub fn set_parallel_inference(&mut self, threads: usize) {
        let exec = match threads {
            0 => onion_exec::Executor::with_default_parallelism(),
            n => onion_exec::Executor::new(n),
        };
        self.inference_executor = Some(Arc::new(exec));
    }

    /// Reverts [`OnionSystem::set_parallel_inference`] to the
    /// sequential expansion path.
    pub fn clear_parallel_inference(&mut self) {
        self.inference_executor = None;
    }

    /// The configured generator settings with the system's shared atom
    /// table (and parallel-inference executor, when enabled) threaded
    /// in.
    fn generator_config(&self) -> GeneratorConfig {
        let mut config = self.engine_config.generator.clone();
        config.atoms = Some(Arc::clone(&self.atoms));
        if config.executor.is_none() {
            config.executor = self.inference_executor.clone();
        }
        config
    }

    /// Runs the iterative articulation engine between two loaded
    /// sources, seeding it with the rules added so far. The confirmed
    /// rules and generated articulation are stored on the system.
    pub fn articulate(
        &mut self,
        left: &str,
        right: &str,
        expert: &mut dyn Expert,
    ) -> Result<EngineReport> {
        let l = self.get_source(left)?;
        let r = self.get_source(right)?;
        let mut engine_config = self.engine_config.clone();
        engine_config.generator = self.generator_config();
        let engine = ArticulationEngine::new(MatcherPipeline::standard(self.lexicon.clone()))
            .with_config(engine_config);
        let (articulation, report) =
            engine.run(l, r, expert, self.rules.clone()).map_err(SystemError::Articulate)?;
        self.rules = articulation.rules.clone();
        self.articulation = Some(articulation);
        self.touch();
        Ok(report)
    }

    /// Generates the articulation purely from the added rules (no
    /// matcher proposals — the "manual expert" path).
    pub fn articulate_from_rules(&mut self, left: &str, right: &str) -> Result<&Articulation> {
        let l = self.get_source(left)?;
        let r = self.get_source(right)?;
        let generator = ArticulationGenerator::with_config(self.generator_config());
        let articulation =
            generator.generate(&self.rules, &[l, r]).map_err(SystemError::Articulate)?;
        self.articulation = Some(articulation);
        self.touch();
        Ok(self.articulation.as_ref().expect("just set"))
    }

    /// The current articulation.
    pub fn articulation(&self) -> Option<&Articulation> {
        self.articulation.as_ref()
    }

    /// Installs a precomputed articulation (loaded from persistence or
    /// generated out-of-band); its confirmed rules replace the
    /// system's. The sources it references must be loaded before
    /// querying.
    pub fn set_articulation(&mut self, articulation: Articulation) {
        self.rules = articulation.rules.clone();
        self.articulation = Some(articulation);
        self.touch();
    }

    // ------------------------------------------------------------------
    // algebra
    // ------------------------------------------------------------------

    fn articulated_pair(&self) -> Result<(&Articulation, Vec<&Ontology>)> {
        let art = self.articulation.as_ref().ok_or(SystemError::NotArticulated)?;
        let names = art.source_names();
        let mut sources = Vec::with_capacity(names.len());
        for n in names {
            sources.push(self.get_source(n)?);
        }
        Ok((art, sources))
    }

    /// The unified ontology graph (§5.1 Union), computed on demand.
    pub fn union(&self) -> Result<OntGraph> {
        let (art, sources) = self.articulated_pair()?;
        art.unified(&sources).map_err(SystemError::Articulate)
    }

    /// The intersection ontology (§5.2) — the articulation ontology.
    pub fn intersection(&self) -> Result<&Ontology> {
        Ok(&self.articulation.as_ref().ok_or(SystemError::NotArticulated)?.ontology)
    }

    /// The difference `left − right` (§5.3).
    pub fn difference(
        &self,
        left: &str,
        right: &str,
    ) -> Result<(OntGraph, onion_algebra::DifferenceReport)> {
        let art = self.articulation.as_ref().ok_or(SystemError::NotArticulated)?;
        let l = self.get_source(left)?;
        let r = self.get_source(right)?;
        onion_algebra::difference(l, r, art).map_err(SystemError::Algebra)
    }

    // ------------------------------------------------------------------
    // query system
    // ------------------------------------------------------------------

    /// Plans and executes a textual query (articulation vocabulary)
    /// against the loaded knowledge bases.
    pub fn query(&self, text: &str) -> Result<ResultSet> {
        let q = Query::parse(text).map_err(SystemError::Query)?;
        self.run_query(&q)
    }

    /// Executes a pre-built query.
    pub fn run_query(&self, query: &Query) -> Result<ResultSet> {
        let (art, sources) = self.articulated_pair()?;
        let wrappers: Vec<&dyn Wrapper> = self.kbs.values().map(|w| w as &dyn Wrapper).collect();
        onion_query::execute(query, art, &sources, &self.conversions, &wrappers)
            .map_err(SystemError::Query)
    }

    /// Executes a batch of pre-built queries in parallel on `exec`,
    /// returning per-query results in input order. Equal results are
    /// shared: a query appearing `k` times in the batch is planned and
    /// executed once and its `Arc` handed to all `k` slots.
    ///
    /// The batch scheduler: queries are **canonicalised** (display
    /// form, which round-trips through the parser), exact duplicates
    /// **deduped** within the batch, the whole batch pinned to one
    /// state epoch, only unique cache misses executed in parallel, and
    /// the shared results scattered back in input order. With a cache
    /// enabled ([`OnionSystem::set_query_cache`]), repeats across
    /// batches at an unchanged epoch are served without executing
    /// anything.
    ///
    /// The system is read-only for the whole batch (`&self`), so every
    /// worker plans and executes against the same articulation state —
    /// the facade-level counterpart of snapshot isolation (the
    /// graph-level machinery is `OntGraph::snapshot` /
    /// `SnapshotStore`). Result *values* are identical to calling
    /// [`OnionSystem::run_query`] per query sequentially, for every
    /// thread count, cache on or off.
    pub fn run_batch(
        &self,
        exec: &onion_exec::Executor,
        queries: &[Query],
    ) -> Vec<Result<Arc<ResultSet>>> {
        let _span = onion_obs::span!("query_batch");
        onion_obs::count!("onion_query_batch_queries_total", queries.len());
        let refs: Vec<&Query> = queries.iter().collect();
        self.run_batch_scheduled(exec, &refs)
    }

    /// Parses and executes a batch of textual queries in parallel
    /// (per-query errors stay per-query; a parse failure does not
    /// affect its batch siblings). Parsed queries go through the same
    /// dedup + cache scheduler as [`OnionSystem::run_batch`].
    pub fn query_batch(
        &self,
        exec: &onion_exec::Executor,
        texts: &[&str],
    ) -> Vec<Result<Arc<ResultSet>>> {
        let _span = onion_obs::span!("query_batch");
        onion_obs::count!("onion_query_batch_queries_total", texts.len());
        let parsed: Vec<Result<Query>> =
            texts.iter().map(|t| Query::parse(t).map_err(SystemError::Query)).collect();
        let ok_refs: Vec<&Query> = parsed.iter().filter_map(|p| p.as_ref().ok()).collect();
        let mut executed = self.run_batch_scheduled(exec, &ok_refs).into_iter();
        parsed
            .into_iter()
            .map(|p| match p {
                Ok(_) => executed.next().expect("one executed result per parsed query"),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// The shared batch scheduler: canonicalise → dedup → probe the
    /// cache under the pinned epoch → execute unique misses in
    /// parallel → fill the cache → scatter `Arc`s in input order.
    ///
    /// `SystemError` is not `Clone`, so when a deduped query fails the
    /// first occurrence takes the original error and later occurrences
    /// re-execute individually (execution under `&self` is
    /// deterministic, so they fail the same way).
    fn run_batch_scheduled(
        &self,
        exec: &onion_exec::Executor,
        queries: &[&Query],
    ) -> Vec<Result<Arc<ResultSet>>> {
        let epoch = self.state_epoch;
        let keys: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
        // key → unique slot; uniq_first[slot] = first input index
        let mut slot_of: HashMap<&str, usize> = HashMap::new();
        let mut uniq_first: Vec<usize> = Vec::new();
        let mut assign: Vec<usize> = Vec::with_capacity(queries.len());
        for (i, key) in keys.iter().enumerate() {
            let slot = *slot_of.entry(key.as_str()).or_insert_with(|| {
                uniq_first.push(i);
                uniq_first.len() - 1
            });
            assign.push(slot);
        }
        let duplicates = queries.len() - uniq_first.len();
        if duplicates > 0 {
            onion_obs::count!("onion_query_batch_dedup_total", duplicates);
        }

        // probe the cache under the pinned epoch
        let mut slot_results: Vec<Option<Result<Arc<ResultSet>>>> = Vec::new();
        slot_results.resize_with(uniq_first.len(), || None);
        let mut misses: Vec<usize> = Vec::new();
        for (slot, &i) in uniq_first.iter().enumerate() {
            match self
                .query_cache
                .as_ref()
                .and_then(|c| c.get(&CacheKey::new(CACHE_SCOPE, epoch, keys[i].clone())))
            {
                Some(hit) => slot_results[slot] = Some(Ok(hit)),
                None => misses.push(slot),
            }
        }

        // execute only the unique misses in parallel
        let computed = exec.par_map(&misses, |&slot| self.run_query(queries[uniq_first[slot]]));
        for (&slot, res) in misses.iter().zip(computed) {
            let res = res.map(Arc::new);
            if let (Some(cache), Ok(v)) = (self.query_cache.as_ref(), &res) {
                cache.insert(
                    CacheKey::new(CACHE_SCOPE, epoch, keys[uniq_first[slot]].clone()),
                    Arc::clone(v),
                    result_weight(v),
                );
            }
            slot_results[slot] = Some(res);
        }

        // scatter in input order; an erred slot is taken by its first
        // occurrence and re-executed for the rest
        assign
            .into_iter()
            .map(|slot| {
                let entry = &mut slot_results[slot];
                match entry {
                    Some(Ok(v)) => Ok(Arc::clone(v)),
                    Some(Err(_)) => entry.take().expect("checked Some"),
                    None => self.run_query(queries[uniq_first[slot]]).map(Arc::new),
                }
            })
            .collect()
    }

    /// Renders the query plan for a textual query (the viewer's
    /// "explain").
    pub fn explain(&self, text: &str) -> Result<String> {
        let q = Query::parse(text).map_err(SystemError::Query)?;
        let (art, sources) = self.articulated_pair()?;
        let plan =
            onion_query::plan(&q, art, &sources, &self.conversions).map_err(SystemError::Query)?;
        Ok(plan.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::AcceptAll;
    use onion_ontology::examples::{carrier, factory, fig2_rules_text};
    use onion_query::{Instance, Value};

    fn loaded() -> OnionSystem {
        let mut s = OnionSystem::with_transport_lexicon();
        s.add_source(carrier());
        s.add_source(factory());
        s
    }

    #[test]
    fn sources_listed_sorted() {
        let s = loaded();
        assert_eq!(s.sources(), vec!["carrier", "factory"]);
        assert!(s.source("carrier").is_some());
        assert!(s.source("nope").is_none());
    }

    #[test]
    fn rules_then_manual_articulation() {
        let mut s = loaded();
        let added = s.add_rules(fig2_rules_text()).unwrap();
        assert!(added >= 10);
        let art = s.articulate_from_rules("carrier", "factory").unwrap();
        assert!(art.bridges.len() >= 12);
        assert!(s.union().unwrap().node_count() > 0);
        assert_eq!(s.intersection().unwrap().name(), "transport");
    }

    #[test]
    fn engine_articulation_and_query() {
        let mut s = loaded();
        s.add_rules(fig2_rules_text()).unwrap();
        let report = s.articulate("carrier", "factory", &mut AcceptAll).unwrap();
        assert!(report.accepted > 0);

        let mut ckb = KnowledgeBase::new("carrier");
        ckb.add(Instance::new("MyCar", "Cars").with("Price", Value::Num(2203.71)));
        s.add_knowledge_base(ckb);
        let rs = s.query("find Vehicle(Price)").unwrap();
        assert_eq!(rs.len(), 1);
        assert!((rs.rows[0].attrs["Price"].as_num().unwrap() - 1000.0).abs() < 1e-6);

        let plan = s.explain("find Vehicle(Price) where Price < 5000").unwrap();
        assert!(plan.contains("carrier"));
    }

    #[test]
    fn parallel_inference_through_facade_matches_sequential() {
        let articulated = |threads: Option<usize>| {
            let mut s = loaded();
            if let Some(t) = threads {
                s.set_parallel_inference(t);
            }
            s.add_rules(fig2_rules_text()).unwrap();
            let report = s.articulate("carrier", "factory", &mut AcceptAll).unwrap();
            let mut bridges: Vec<String> =
                s.articulation().unwrap().bridges.iter().map(|b| format!("{b:?}")).collect();
            bridges.sort();
            (report, bridges)
        };
        let (seq_report, seq_bridges) = articulated(None);
        for t in [1, 4] {
            let (report, bridges) = articulated(Some(t));
            assert_eq!(report, seq_report, "threads={t}");
            assert_eq!(bridges, seq_bridges, "threads={t}");
        }
        // clearing restores the sequential path
        let mut s = loaded();
        s.set_parallel_inference(2);
        s.clear_parallel_inference();
        s.add_rules(fig2_rules_text()).unwrap();
        let report = s.articulate("carrier", "factory", &mut AcceptAll).unwrap();
        assert_eq!(report, seq_report);
    }

    #[test]
    fn difference_through_facade() {
        let mut s = loaded();
        s.add_rules("carrier.Cars => factory.Vehicle\n").unwrap();
        s.articulate_from_rules("carrier", "factory").unwrap();
        let (d, report) = s.difference("carrier", "factory").unwrap();
        assert!(!d.contains_label("Cars"));
        assert_eq!(report.determined, vec!["Cars"]);
        let (d2, r2) = s.difference("factory", "carrier").unwrap();
        assert!(d2.contains_label("Vehicle"));
        assert_eq!(r2.removed(), 0);
    }

    #[test]
    fn run_batch_matches_sequential_queries_at_any_thread_count() {
        let mut s = loaded();
        s.add_rules(fig2_rules_text()).unwrap();
        s.articulate("carrier", "factory", &mut AcceptAll).unwrap();
        let mut ckb = KnowledgeBase::new("carrier");
        ckb.add(Instance::new("MyCar", "Cars").with("Price", Value::Num(2203.71)));
        ckb.add(Instance::new("suv1", "SUV").with("Price", Value::Num(22037.1)));
        s.add_knowledge_base(ckb);

        let queries: Vec<Query> = [
            "find Vehicle(Price)",
            "find Vehicle(Price) where Price < 5000",
            "find CargoCarrier(Price)",
        ]
        .iter()
        .map(|t| Query::parse(t).unwrap())
        .collect();
        let sequential: Vec<ResultSet> = queries.iter().map(|q| s.run_query(q).unwrap()).collect();
        for threads in [1, 2, 4] {
            let exec = onion_exec::Executor::new(threads);
            let batch = s.run_batch(&exec, &queries);
            assert_eq!(batch.len(), queries.len());
            for (got, want) in batch.into_iter().zip(&sequential) {
                assert_eq!(got.unwrap().as_ref(), want, "threads={threads}");
            }
        }
    }

    #[test]
    fn run_batch_dedups_exact_duplicates() {
        let mut s = loaded();
        s.add_rules(fig2_rules_text()).unwrap();
        s.articulate("carrier", "factory", &mut AcceptAll).unwrap();
        let mut ckb = KnowledgeBase::new("carrier");
        ckb.add(Instance::new("MyCar", "Cars").with("Price", Value::Num(2203.71)));
        s.add_knowledge_base(ckb);
        let q = |t: &str| Query::parse(t).unwrap();
        let queries =
            vec![q("find Vehicle(Price)"), q("find Truck(Price)"), q("find Vehicle(Price)")];
        let exec = onion_exec::Executor::new(2);
        // dedup is on even with the cache disabled: duplicate slots
        // share one Arc
        let out = s.run_batch(&exec, &queries);
        let a = out[0].as_ref().unwrap();
        let c = out[2].as_ref().unwrap();
        assert!(Arc::ptr_eq(a, c), "duplicates share the executed result");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn query_cache_hits_repeat_batches_and_epoch_bump_invalidates() {
        let mut s = loaded();
        s.add_rules(fig2_rules_text()).unwrap();
        s.articulate("carrier", "factory", &mut AcceptAll).unwrap();
        let mut ckb = KnowledgeBase::new("carrier");
        ckb.add(Instance::new("MyCar", "Cars").with("Price", Value::Num(2203.71)));
        s.add_knowledge_base(ckb);
        s.set_query_cache(64);
        let exec = onion_exec::Executor::new(2);
        let queries = vec![Query::parse("find Vehicle(Price)").unwrap()];

        let cold = s.run_batch(&exec, &queries);
        let stats = s.query_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let warm = s.run_batch(&exec, &queries);
        let stats = s.query_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cold[0].as_ref().unwrap(), warm[0].as_ref().unwrap());
        assert!(
            Arc::ptr_eq(cold[0].as_ref().unwrap(), warm[0].as_ref().unwrap()),
            "warm hit serves the cached Arc"
        );

        // any mutation bumps the state epoch: the next batch misses
        // and reflects the new data
        let before = s.query_epoch();
        let mut ckb2 = KnowledgeBase::new("carrier");
        ckb2.add(Instance::new("MyCar", "Cars").with("Price", Value::Num(2203.71)));
        ckb2.add(Instance::new("suv9", "Cars").with("Price", Value::Num(440.742)));
        s.add_knowledge_base(ckb2);
        assert!(s.query_epoch() > before);
        let fresh = s.run_batch(&exec, &queries);
        assert_eq!(fresh[0].as_ref().unwrap().len(), 2, "stale hit after an edit is forbidden");

        // disabling drops the cache
        s.set_query_cache(0);
        assert!(s.query_cache_stats().is_none());
    }

    #[test]
    fn query_batch_keeps_errors_per_query() {
        let mut s = loaded();
        s.add_rules(fig2_rules_text()).unwrap();
        s.articulate_from_rules("carrier", "factory").unwrap();
        let exec = onion_exec::Executor::new(2);
        let out = s.query_batch(&exec, &["find Vehicle(Price)", "not a query"]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(SystemError::Query(_))));
    }

    #[test]
    fn system_is_shareable_across_threads() {
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<OnionSystem>();
        assert_send::<OnionSystem>();
        assert_send::<SystemError>();
    }

    #[test]
    fn publish_source_is_incremental_and_loads_are_live() {
        let mut s = loaded();
        s.set_shard_count(4);
        assert_eq!(s.shard_count(), 4);
        assert!(s.source_snapshot("carrier").is_none(), "no store before first publish");
        let (snap0, stats0) = s.publish_source("carrier").unwrap();
        assert_eq!(stats0.epoch, 1);
        let shard_count = snap0.shard_count();
        assert_eq!(shard_count, 4);
        // a single same-shard mutation dirties exactly one shard
        let g = s.source_mut("carrier").unwrap().graph_mut();
        let n = g.node_ids().next().unwrap();
        g.add_edge(n, "b11probe", n).unwrap();
        let (snap1, stats1) = s.publish_source("carrier").unwrap();
        assert_eq!(stats1.rebuilt, 1, "self-loop touches one shard");
        assert_eq!(stats1.reused, 3);
        assert_eq!(snap1.epoch(), 2);
        assert_eq!(s.source_snapshot("carrier").unwrap().epoch(), 2);
        // the old epoch is untouched
        assert_eq!(snap0.edge_count() + 1, snap1.edge_count());
        assert!(matches!(s.publish_source("nope"), Err(SystemError::UnknownSource(_))));
    }

    #[test]
    fn default_shard_count_is_adaptive() {
        let s = loaded();
        assert_eq!(s.shard_count(), 0, "unset means adaptive");
        let g = s.source("carrier").unwrap().graph();
        assert_eq!(
            g.shard_count(),
            onion_graph::adaptive_shard_count(g.edge_count()),
            "loaded graphs are sized ~sqrt(E)"
        );
    }

    #[test]
    fn adaptive_first_publish_resizes_to_edge_count() {
        let mut s = loaded();
        // grow carrier well past its load-time size before first publish
        let g = s.source_mut("carrier").unwrap().graph_mut();
        let first = g.node_ids().next().unwrap();
        for i in 0..200 {
            let n = g.ensure_node(&format!("bulk{i}")).unwrap();
            g.add_edge(n, "SubclassOf", first).unwrap();
        }
        let edges = g.edge_count();
        let (snap, _) = s.publish_source("carrier").unwrap();
        assert_eq!(snap.shard_count(), onion_graph::adaptive_shard_count(edges));
        // second publish keeps the layout (incremental path preserved)
        let g = s.source_mut("carrier").unwrap().graph_mut();
        let n = g.node_ids().next().unwrap();
        g.add_edge(n, "probe", n).unwrap();
        let (snap2, stats2) = s.publish_source("carrier").unwrap();
        assert_eq!(snap2.shard_count(), snap.shard_count());
        assert!(stats2.reused > 0, "layout stable: publish stays incremental");
    }

    #[test]
    fn repeated_articulation_reuses_shared_atom_table() {
        let mut s = loaded();
        let mut cfg = EngineConfig::default();
        cfg.generator.expand_with_inference = true;
        s.set_engine_config(cfg);
        s.add_rules("carrier.Cars => factory.Vehicle\n").unwrap();
        s.articulate_from_rules("carrier", "factory").unwrap();
        let warm = {
            let t = s.atom_table();
            let len = t.lock().unwrap().len();
            assert!(len > 0, "first run interned the vocabulary");
            len
        };
        let b1 = s.articulation().unwrap().bridges.clone();
        s.articulate_from_rules("carrier", "factory").unwrap();
        assert_eq!(s.atom_table().lock().unwrap().len(), warm, "second cycle interned nothing new");
        assert_eq!(s.articulation().unwrap().bridges, b1, "reuse never changes results");
    }

    #[test]
    fn shard_count_change_applies_to_loaded_sources() {
        let mut s = loaded();
        s.set_shard_count(2);
        assert_eq!(s.source("carrier").unwrap().graph().shard_count(), 2);
        let mut late = onion_ontology::examples::carrier().into_graph();
        late.set_name("late");
        s.add_source(Ontology::from_graph(late).unwrap());
        assert_eq!(s.source("late").unwrap().graph().shard_count(), 2);
    }

    fn label_shape(g: &OntGraph) -> (Vec<String>, Vec<(String, String, String)>) {
        let mut nodes: Vec<String> =
            g.node_ids().map(|n| g.node_label(n).unwrap().to_string()).collect();
        nodes.sort();
        let mut edges: Vec<(String, String, String)> = g
            .edges()
            .map(|e| {
                (
                    g.node_label(e.src).unwrap().to_string(),
                    e.label.to_string(),
                    g.node_label(e.dst).unwrap().to_string(),
                )
            })
            .collect();
        edges.sort();
        (nodes, edges)
    }

    #[test]
    fn durable_lifecycle_bootstrap_checkpoint_recover() {
        let td = onion_testkit::fs::TempDir::new("sys-durable");
        let mut s = loaded();
        let open = s.open_durable("carrier", td.path()).unwrap();
        assert!(!open.recovered);
        let ck0 = open.checkpoint.expect("bootstrap writes a full checkpoint");
        assert_eq!(ck0.shards_reused, 0, "first checkpoint is full");

        // Checkpointed mutations…
        let g = s.source_mut("carrier").unwrap().graph_mut();
        g.ensure_edge_by_labels("Bikes", "SubclassOf", "Vehicles").unwrap();
        let ck1 = s.checkpoint_source("carrier").unwrap();
        assert!(ck1.shards_written >= 1 && ck1.seq == ck0.seq + 1);
        assert!(
            s.source("carrier").unwrap().graph().journal().is_empty(),
            "checkpoint drains the journal tail"
        );

        // …plus flushed-but-uncheckpointed mutations (replayed from WAL).
        let g = s.source_mut("carrier").unwrap().graph_mut();
        g.ensure_edge_by_labels("Scooters", "SubclassOf", "Bikes").unwrap();
        g.delete_node_by_label("Scooters").unwrap();
        s.publish_source("carrier").unwrap();
        let want = label_shape(s.source("carrier").unwrap().graph());
        drop(s);

        let mut s2 = OnionSystem::with_transport_lexicon();
        s2.add_source(factory());
        let open = s2.open_durable("carrier", td.path()).unwrap();
        assert!(open.recovered);
        assert_eq!(label_shape(s2.source("carrier").unwrap().graph()), want);
        assert!(s2.source_snapshot("carrier").is_some(), "recovery re-publishes");

        // The recovered source articulates like any loaded one.
        s2.add_rules(fig2_rules_text()).unwrap();
        let report = s2.articulate("carrier", "factory", &mut AcceptAll).unwrap();
        assert!(report.accepted > 0);

        // Raw recovery entry point agrees with the loaded state.
        let (rg, stats) = OnionSystem::recover(td.path()).unwrap();
        assert_eq!(label_shape(&rg), want);
        assert!(stats.manifest_seq.is_some());
    }

    #[test]
    fn checkpoint_requires_open_durable() {
        let mut s = loaded();
        assert!(matches!(s.checkpoint_source("carrier"), Err(SystemError::Durability(_))));
    }

    #[test]
    fn open_durable_rejects_wrong_source_name() {
        let td = onion_testkit::fs::TempDir::new("sys-durable-name");
        let mut s = loaded();
        s.open_durable("carrier", td.path()).unwrap();
        drop(s);
        let mut s2 = loaded();
        assert!(matches!(s2.open_durable("factory", td.path()), Err(SystemError::Durability(_))));
    }

    #[test]
    fn errors_for_missing_pieces() {
        let mut s = OnionSystem::with_transport_lexicon();
        assert!(matches!(s.union(), Err(SystemError::NotArticulated)));
        assert!(matches!(
            s.articulate("a", "b", &mut AcceptAll),
            Err(SystemError::UnknownSource(_))
        ));
        assert!(matches!(s.add_rules("not a rule"), Err(SystemError::Rules(_))));
        assert!(matches!(s.query("find X"), Err(SystemError::NotArticulated)));
    }
}
