//! # onion-core — the ONION system behind one API
//!
//! Facade over the full reproduction of *"A Graph-Oriented Model for
//! Articulation of Ontology Interdependencies"* (Mitra, Wiederhold,
//! Kersten; EDBT 2000). [`OnionSystem`] wires the architecture of the
//! paper's Fig. 1 together:
//!
//! * the **data layer** — source ontologies as directed labeled graphs
//!   (`onion-graph`, `onion-ontology`), articulation rules
//!   (`onion-rules`);
//! * the **articulation engine** — SKAT matchers, the expert in the
//!   loop, the articulation generator (`onion-articulate`);
//! * the **algebra** — union / intersection / difference over the
//!   articulation (`onion-algebra`);
//! * the **query system** — reformulation across bridges, per-source
//!   plans, wrappers (`onion-query`);
//! * the **viewer** — text rendering and scripted sessions
//!   (`onion-viewer`).
//!
//! ```
//! use onion_core::OnionSystem;
//! use onion_core::prelude::*;
//!
//! let mut onion = OnionSystem::with_transport_lexicon();
//! onion.add_source(onion_ontology::examples::carrier());
//! onion.add_source(onion_ontology::examples::factory());
//! onion.add_rules(onion_ontology::examples::fig2_rules_text()).unwrap();
//! let report = onion.articulate("carrier", "factory", &mut AcceptAll).unwrap();
//! assert!(report.accepted > 0);
//! assert!(onion.articulation().unwrap().bridges.len() > 10);
//! ```

pub mod system;

pub use system::{DurableOpen, OnionSystem};

// Re-export the subsystem crates under their short names.
pub use onion_algebra as algebra;
pub use onion_articulate as articulate;
pub use onion_exec as exec;
pub use onion_graph as graph;
pub use onion_lexicon as lexicon;
pub use onion_obs as obs;
pub use onion_ontology as ontology;
pub use onion_query as query;
pub use onion_rules as rules;
pub use onion_testkit as testkit;
pub use onion_viewer as viewer;

/// The commonly-used types in one import.
pub mod prelude {
    pub use onion_algebra::{difference, extract, filter, intersect, union};
    pub use onion_articulate::{
        AcceptAll, Articulation, ArticulationEngine, ArticulationGenerator, Bridge, BridgeKind,
        CandidateRule, EngineConfig, EngineReport, Expert, GeneratorConfig, GeneratorStats,
        MatcherPipeline, OracleExpert, ScriptedExpert, ThresholdExpert, Verdict,
    };
    pub use onion_exec::{CacheKey, CacheStats, Executor, ResultCache};
    pub use onion_graph::{
        rel, CheckpointStats, Durability, EdgeId, GraphOp, GraphSnapshot, LabelEquiv, Lsn,
        MatchConfig, Matcher, NodeId, OntGraph, Pattern, PublishStats, RecoveryStats,
        ShardedSnapshot, SnapshotStore, WalError,
    };
    pub use onion_lexicon::{builtin::transport_lexicon, Lexicon};
    pub use onion_obs::{MetricsSnapshot, TraceEvent};
    pub use onion_ontology::{examples, Ontology, OntologyBuilder};
    pub use onion_query::{
        execute, CmpOp, InMemoryWrapper, Instance, KnowledgeBase, Query, ResultSet, Value, Wrapper,
    };
    pub use onion_rules::{
        parse_rules, ArticulationRule, AtomId, AtomTable, ConversionRegistry, RelationRegistry,
        RuleExpr, RuleSet, Term,
    };
}
