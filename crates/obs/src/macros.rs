//! The recording macros — the only way instrumented code should talk
//! to the registry.
//!
//! Every macro is self-gating: it checks [`enabled()`](crate::enabled)
//! (one relaxed load) before evaluating anything else, so disabled
//! call sites never format a field, never resolve a handle, and never
//! touch the registry mutex. Handles are resolved once per call site
//! and cached in a `static OnceLock`, so the enabled steady state is a
//! relaxed load plus a striped `fetch_add`.
//!
//! Metric names must be string literals — span names are baked into
//! histogram names at compile time (`span!("publish")` records into
//! `onion_span_publish_us`).

/// Adds to a named counter: `count!("onion_x_total")` increments by 1,
/// `count!("onion_x_total", n)` adds `n` (any value castable to u64).
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::global().counter($name)).add($n as u64);
        }
    };
}

/// Sets a named gauge to a point-in-time value (castable to i64).
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::global().gauge($name)).set($v as i64);
        }
    };
}

/// Records a microsecond latency observation into a named histogram
/// with the [`LatencyUs`](crate::HistKind::LatencyUs) bucket preset.
#[macro_export]
macro_rules! observe_us {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::global().histogram($name, $crate::HistKind::LatencyUs))
                .observe($v as u64);
        }
    };
}

/// Records a size/count observation into a named histogram with the
/// [`Count`](crate::HistKind::Count) bucket preset.
#[macro_export]
macro_rules! observe_val {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::global().histogram($name, $crate::HistKind::Count))
                .observe($v as u64);
        }
    };
}

/// Opens a tracing span: returns a guard whose drop records wall-time
/// into the histogram `onion_span_<name>_us`. With `key = value`
/// fields, the drop additionally appends a structured span-end event
/// (fields rendered with `Display`) to the trace ring. Bind the
/// guard — `let _span = span!("publish");` — or it drops immediately.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
            let h = SITE
                .get_or_init(|| {
                    $crate::global()
                        .histogram(concat!("onion_span_", $name, "_us"), $crate::HistKind::LatencyUs)
                })
                .clone();
            $crate::Span::recording(h, $name, ::std::vec::Vec::new(), false)
        } else {
            $crate::Span::disabled()
        }
    };
    ($name:literal, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
            let h = SITE
                .get_or_init(|| {
                    $crate::global()
                        .histogram(concat!("onion_span_", $name, "_us"), $crate::HistKind::LatencyUs)
                })
                .clone();
            $crate::Span::recording(
                h,
                $name,
                ::std::vec![$((stringify!($k), ::std::format!("{}", $v))),+],
                true,
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Appends a structured point event (name plus `key = value` fields,
/// rendered with `Display`) to the trace ring.
#[macro_export]
macro_rules! event {
    ($name:literal $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::push_event(
                $name,
                ::std::vec![$((stringify!($k), ::std::format!("{}", $v))),*],
                ::std::option::Option::None,
            );
        }
    };
}
