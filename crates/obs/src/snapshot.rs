//! Reading and exporting metrics: [`MetricsSnapshot`] plus the JSON
//! and Prometheus text renderers and a format linter for the latter.

use std::fmt::Write as _;

/// A point-in-time read of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds (inclusive), excluding the `+Inf` overflow.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts, `bounds.len() + 1` entries; the
    /// last is the `+Inf` overflow bucket. Non-cumulative.
    pub buckets: Vec<u64>,
    /// Total observations (always the sum of `buckets`).
    pub count: u64,
    /// Sum of observed values (may lag `count` by in-flight
    /// observations; see the crate consistency contract).
    pub sum: u64,
}

/// A point-in-time read of a whole [`Registry`](crate::Registry),
/// sorted by metric name. Counters are monotone across successive
/// snapshots of the same registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a JSON document (hand-rolled, like the
    /// bench baseline writer — the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{n}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{n}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{ \"name\": \"{}\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                h.name, h.count, h.sum
            );
            for (j, (&le, &c)) in h.bounds.iter().zip(&h.buckets).enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{{ \"le\": \"{le}\", \"count\": {c} }}");
            }
            let _ = write!(
                out,
                ", {{ \"le\": \"+Inf\", \"count\": {} }}] }}",
                h.buckets.last().copied().unwrap_or(0)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` comments, cumulative histogram
    /// buckets with `le` labels, `_sum`/`_count` series. The output
    /// passes [`lint_prometheus`] by construction.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (n, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (n, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cum = 0u64;
            for (&le, &c) in h.bounds.iter().zip(&h.buckets) {
                cum += c;
                let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cum}", h.name);
            }
            cum += h.buckets.last().copied().unwrap_or(0);
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cum}", h.name);
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "{}_count {}", h.name, h.count);
        }
        out
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates Prometheus text exposition output: every sample line is
/// `name[{labels}] value`, every metric name is legal and declared by
/// a preceding `# TYPE` line, histogram buckets are cumulative
/// (non-decreasing), and the `+Inf` bucket equals `_count`. Returns
/// the first violation found.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    // name → (last cumulative bucket value, saw +Inf, +Inf value)
    let mut hist_state: BTreeMap<String, (u64, bool, u64)> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {lineno}: malformed TYPE comment: {line:?}"));
            };
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: bad metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            types.insert(name, kind);
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comment
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample without value: {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable sample value: {line:?}"))?;
        let (name, labels) = match series.split_once('{') {
            Some((n, l)) => {
                let l = l
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated labels: {line:?}"))?;
                (n, Some(l))
            }
            None => (series, None),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        // Resolve the declaring family: a histogram declares its
        // _bucket/_sum/_count series.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(|suf| name.strip_suffix(suf))
            .find(|base| types.get(base) == Some(&"histogram"));
        if family.is_none() && !types.contains_key(name) {
            return Err(format!("line {lineno}: series {name:?} has no preceding # TYPE"));
        }
        match name.strip_suffix("_bucket") {
            Some(b) if types.get(b) == Some(&"histogram") => {
                let le = labels
                    .and_then(|l| l.strip_prefix("le=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: bucket without le label: {line:?}"))?;
                let st = hist_state.entry(b.to_string()).or_insert((0, false, 0));
                if value < st.0 as f64 {
                    return Err(format!("line {lineno}: bucket counts not cumulative: {line:?}"));
                }
                st.0 = value as u64;
                if le == "+Inf" {
                    st.1 = true;
                    st.2 = value as u64;
                } else if le.parse::<f64>().is_err() {
                    return Err(format!("line {lineno}: unparseable le bound {le:?}"));
                }
            }
            _ => {
                if let Some(b) = name.strip_suffix("_count") {
                    if let Some(st) = hist_state.get(b) {
                        if !st.1 {
                            return Err(format!("histogram {b:?} has no +Inf bucket"));
                        }
                        if st.2 != value as u64 {
                            return Err(format!(
                                "histogram {b:?}: +Inf bucket {} != _count {}",
                                st.2, value
                            ));
                        }
                    }
                }
            }
        }
    }
    for (name, (_, saw_inf, _)) in &hist_state {
        if !saw_inf {
            return Err(format!("histogram {name:?} has no +Inf bucket"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistKind, Registry};

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("onion_test_total").add(12);
        reg.gauge("onion_test_depth").set(-3);
        let h = reg.histogram("onion_test_us", HistKind::LatencyUs);
        h.observe(3);
        h.observe(700);
        h.observe(9_000_000);
        reg.snapshot()
    }

    #[test]
    fn prometheus_render_passes_lint() {
        let text = sample_snapshot().to_prometheus();
        lint_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE onion_test_total counter"));
        assert!(text.contains("onion_test_total 12"));
        assert!(text.contains("onion_test_depth -3"));
        assert!(text.contains("onion_test_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("onion_test_us_count 3"));
    }

    #[test]
    fn json_render_is_well_formed_enough() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"onion_test_total\": 12"));
        assert!(json.contains("\"onion_test_depth\": -3"));
        assert!(json.contains("\"le\": \"+Inf\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn lint_rejects_malformed_exports() {
        assert!(lint_prometheus("no_type_decl 1").is_err());
        assert!(lint_prometheus("# TYPE x counter\nx notanumber").is_err());
        assert!(lint_prometheus("# TYPE 9bad counter\n").is_err());
        assert!(lint_prometheus("# TYPE x widget\n").is_err());
        // non-cumulative buckets
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3\n";
        assert!(lint_prometheus(bad).is_err());
        // +Inf != count
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 4\n";
        assert!(lint_prometheus(bad).is_err());
        // missing +Inf entirely
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 0\n";
        assert!(lint_prometheus(bad).is_err());
    }

    #[test]
    fn snapshot_accessors_find_metrics() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("onion_test_total"), Some(12));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("onion_test_depth"), Some(-3));
        let h = snap.histogram("onion_test_us").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 3 + 700 + 9_000_000);
    }
}
