//! # onion-obs — zero-dependency observability for ONION
//!
//! The metrics/tracing layer behind "why was this publish slow": a
//! lock-cheap **metrics registry** (named counters, gauges, and
//! fixed-bucket latency histograms, all backed by striped relaxed
//! atomics), a **tracing span** API whose guards record wall-time into
//! histograms and can append structured events to a bounded in-memory
//! trace ring (read it with [`trace_events`], capacity
//! [`TRACE_RING_CAP`]), and a [`MetricsSnapshot`] reader that renders to both
//! a JSON document and Prometheus text exposition format.
//!
//! Like the `crates/compat` stand-ins, the crate has **zero external
//! dependencies** — everything is `std` atomics and mutexes.
//!
//! ## Cost contract
//!
//! Observability is **disabled by default**. Every recording macro
//! ([`count!`], [`gauge_set!`], [`observe_us!`], [`observe_val!`],
//! [`span!`], [`event!`]) checks [`enabled()`] — a single relaxed
//! atomic load — before touching anything else, so an instrumented hot
//! path pays one load and a predictable branch when the registry is
//! off (pinned by `disabled_macros_record_nothing_and_stay_cheap`).
//! When enabled, counters and histograms record with one relaxed
//! `fetch_add` on a thread-striped cache-line-padded cell — no lock,
//! no contention between recorders on different stripes. The registry
//! mutex is taken only when a call site first resolves its handle
//! (cached in a per-site `OnceLock`) and when a snapshot is read.
//!
//! ## Consistency contract
//!
//! [`Registry::snapshot`] is *consistent enough*, not atomic: counters
//! are **monotone** (a snapshot taken during concurrent recording
//! never observes a counter lower than an earlier snapshot — each
//! stripe is monotone under relaxed `fetch_add`, and a sum of
//! per-stripe monotone reads is monotone), gauges are point-in-time,
//! and a histogram's `sum` may lag its bucket counts by in-flight
//! observations. The rendered Prometheus `_count` is derived from the
//! bucket counts, so `le="+Inf"` always equals `_count` exactly.
//!
//! ```
//! use onion_obs as obs;
//!
//! obs::set_enabled(true);
//! {
//!     let _span = obs::span!("demo");
//!     obs::count!("onion_demo_total", 3);
//! }
//! let snap = obs::global().snapshot();
//! assert_eq!(snap.counter("onion_demo_total"), Some(3));
//! assert!(snap.to_prometheus().contains("onion_span_demo_us_bucket"));
//! obs::set_enabled(false);
//! ```

mod macros;
mod registry;
mod snapshot;
mod trace;

pub use registry::{
    global, Counter, Gauge, HistKind, Histogram, Registry, COUNT_BOUNDS, LATENCY_BOUNDS_US,
};
pub use snapshot::{lint_prometheus, HistogramSnapshot, MetricsSnapshot};
pub use trace::{clear_trace, push_event, trace_events, Span, TraceEvent, TRACE_RING_CAP};

use std::sync::atomic::{AtomicBool, Ordering};

/// The global on/off switch. `false` (the default) is the production
/// fast path: recording macros reduce to this one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is observability recording enabled? One relaxed atomic load — the
/// entire disabled-path cost of every recording macro.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns observability recording on or off, process-wide. Off is the
/// default. Turning it off stops new recording but keeps everything
/// already recorded readable via [`global()`]`.snapshot()`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Instant;

    /// Serialises the tests that flip the process-wide enabled flag.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_macros_record_nothing_and_stay_cheap() {
        let _g = SERIAL.lock().unwrap();
        set_enabled(false);
        let start = Instant::now();
        for i in 0..1_000_000u64 {
            count!("onion_test_disabled_total", i);
            observe_us!("onion_test_disabled_us", i);
            gauge_set!("onion_test_disabled_depth", i as i64);
        }
        let elapsed = start.elapsed();
        let snap = global().snapshot();
        assert_eq!(snap.counter("onion_test_disabled_total"), None, "no handle ever resolved");
        assert!(snap.histogram("onion_test_disabled_us").is_none());
        assert!(snap.gauge("onion_test_disabled_depth").is_none());
        // 3M disabled macro hits are three relaxed loads each; even a
        // slow CI box does that in well under half a second.
        assert!(elapsed.as_millis() < 500, "disabled path too slow: {elapsed:?}");
    }

    #[test]
    fn enabled_macros_record_into_the_global_registry() {
        let _g = SERIAL.lock().unwrap();
        set_enabled(true);
        count!("onion_test_enabled_total");
        count!("onion_test_enabled_total", 4);
        gauge_set!("onion_test_enabled_depth", -7);
        observe_us!("onion_test_enabled_us", 42);
        observe_val!("onion_test_enabled_delta", 9);
        {
            let _s = span!("obs_selftest", source = "carrier");
        }
        event!("obs_selftest_event", code = 3);
        set_enabled(false);

        let snap = global().snapshot();
        assert_eq!(snap.counter("onion_test_enabled_total"), Some(5));
        assert_eq!(snap.gauge("onion_test_enabled_depth"), Some(-7));
        let h = snap.histogram("onion_test_enabled_us").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 42);
        let span_h = snap.histogram("onion_span_obs_selftest_us").unwrap();
        assert_eq!(span_h.count, 1);
        let events = trace_events();
        assert!(events.iter().any(|e| e.name == "obs_selftest"
            && e.duration_us.is_some()
            && e.fields == vec![("source", "carrier".to_string())]));
        assert!(
            events
                .iter()
                .any(|e| e.name == "obs_selftest_event"
                    && e.fields == vec![("code", "3".to_string())])
        );
    }

    #[test]
    fn toggling_off_stops_recording() {
        let _g = SERIAL.lock().unwrap();
        set_enabled(true);
        count!("onion_test_toggle_total");
        set_enabled(false);
        count!("onion_test_toggle_total");
        let snap = global().snapshot();
        assert_eq!(snap.counter("onion_test_toggle_total"), Some(1));
    }
}
