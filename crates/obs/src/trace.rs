//! Tracing spans and the bounded in-memory event ring.
//!
//! A [`Span`] is a guard object minted by the [`span!`](crate::span!)
//! macro: on drop it records its wall-time into the site's latency
//! histogram and, when the site captured fields, appends a structured
//! [`TraceEvent`] to the global trace ring. The ring is for coarse
//! post-hoc inspection (recovery, checkpoints, expensive publishes) —
//! it is mutex-backed and bounded, not a hot-path structure.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::Histogram;

/// Capacity of the global trace ring: old events are dropped once this
/// many are buffered.
pub const TRACE_RING_CAP: usize = 256;

/// One structured event in the trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (process-wide, never reused; gaps mean
    /// events were dropped by the ring bound).
    pub seq: u64,
    /// Event (or span) name.
    pub name: &'static str,
    /// Captured `key = value` fields, in capture order.
    pub fields: Vec<(&'static str, String)>,
    /// Wall-time for span-end events; `None` for point events.
    pub duration_us: Option<u64>,
}

/// The bounded event buffer ("TraceRing"): a mutexed deque capped at
/// [`TRACE_RING_CAP`].
#[derive(Debug, Default)]
struct Ring {
    events: Mutex<VecDeque<TraceEvent>>,
    seq: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(Ring::default)
}

/// Appends one event to the global trace ring, evicting the oldest if
/// full. Callers normally go through [`event!`](crate::event!) (which
/// gates on [`enabled()`](crate::enabled)); this function records
/// unconditionally.
pub fn push_event(
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    duration_us: Option<u64>,
) {
    let r = ring();
    let seq = r.seq.fetch_add(1, Ordering::Relaxed);
    let mut events = r.events.lock().unwrap();
    if events.len() == TRACE_RING_CAP {
        events.pop_front();
    }
    events.push_back(TraceEvent { seq, name, fields, duration_us });
}

/// A copy of the buffered events, oldest first.
pub fn trace_events() -> Vec<TraceEvent> {
    ring().events.lock().unwrap().iter().cloned().collect()
}

/// Empties the trace ring (sequence numbers keep counting).
pub fn clear_trace() {
    ring().events.lock().unwrap().clear();
}

/// A span guard: created by [`span!`](crate::span!), records on drop.
/// The disabled form carries no state and its drop is a no-op branch.
#[derive(Debug)]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    start: Instant,
    hist: Histogram,
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    trace: bool,
}

impl Span {
    /// The no-op span the disabled path returns.
    #[inline]
    pub fn disabled() -> Span {
        Span { active: None }
    }

    /// A recording span: wall-time since now goes into `hist` on drop;
    /// with `trace` set, a span-end [`TraceEvent`] carrying `fields`
    /// is appended too.
    pub fn recording(
        hist: Histogram,
        name: &'static str,
        fields: Vec<(&'static str, String)>,
        trace: bool,
    ) -> Span {
        Span { active: Some(ActiveSpan { start: Instant::now(), hist, name, fields, trace }) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let us = a.start.elapsed().as_micros() as u64;
            a.hist.observe(us);
            if a.trace {
                push_event(a.name, a.fields, Some(us));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistKind, Registry};

    #[test]
    fn ring_is_bounded_and_ordered() {
        clear_trace();
        let base = {
            push_event("bound_probe", Vec::new(), None);
            trace_events().last().unwrap().seq
        };
        for i in 0..TRACE_RING_CAP + 10 {
            push_event("bound_fill", vec![("i", i.to_string())], None);
        }
        let events = trace_events();
        assert_eq!(events.len(), TRACE_RING_CAP);
        // the probe and the 10 oldest fills were evicted
        assert!(events.first().unwrap().seq > base);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn span_records_duration_into_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("span_us", HistKind::LatencyUs);
        {
            let _s = Span::recording(h, "t", Vec::new(), false);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("span_us").unwrap().count, 1);
    }

    #[test]
    fn traced_span_appends_event_with_duration() {
        let reg = Registry::new();
        let h = reg.histogram("traced_us", HistKind::LatencyUs);
        {
            let _s = Span::recording(h, "traced_span", vec![("k", "v".into())], true);
        }
        let e = trace_events().into_iter().rfind(|e| e.name == "traced_span").unwrap();
        assert_eq!(e.fields, vec![("k", "v".to_string())]);
        assert!(e.duration_us.is_some());
    }

    #[test]
    fn disabled_span_is_inert() {
        let _s = Span::disabled(); // dropping must not touch anything
    }
}
