//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms backed by striped relaxed atomics (see the crate docs
//! for the cost and consistency contracts).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Stripe count for counters and histograms. Eight cache-line-padded
/// cells spread concurrent recorders far enough apart that a hot
/// counter never becomes a coherence hotspot, while a snapshot still
/// only sums eight cells.
const STRIPES: usize = 8;

/// One cache line's worth of counter cell: padding keeps neighbouring
/// stripes out of each other's coherence traffic.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PadCell(AtomicU64);

/// Round-robin assignment of threads to stripes.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe slot, fixed at first use.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

#[inline]
fn stripe() -> usize {
    STRIPE.with(|s| *s)
}

/// Histogram bucket upper bounds (inclusive, microseconds) for
/// latency-shaped distributions: sub-microsecond to half a second on
/// a log-ish scale, plus the implicit `+Inf` overflow bucket.
pub const LATENCY_BOUNDS_US: &[u64] =
    &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000, 500_000];

/// Histogram bucket upper bounds (inclusive) for count-shaped
/// distributions (delta sizes, batch sizes): powers of four up to 64k,
/// plus the implicit `+Inf` overflow bucket.
pub const COUNT_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536];

/// Which fixed bucket preset a histogram uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Wall-time in microseconds ([`LATENCY_BOUNDS_US`]).
    LatencyUs,
    /// Dimensionless sizes ([`COUNT_BOUNDS`]).
    Count,
}

impl HistKind {
    /// The preset's bucket upper bounds (exclusive of the `+Inf`
    /// overflow bucket every histogram also has).
    pub fn bounds(self) -> &'static [u64] {
        match self {
            HistKind::LatencyUs => LATENCY_BOUNDS_US,
            HistKind::Count => COUNT_BOUNDS,
        }
    }
}

#[derive(Debug, Default)]
struct CounterCore {
    stripes: [PadCell; STRIPES],
}

/// A monotone counter handle. Cloning shares the underlying cells;
/// recording is one relaxed `fetch_add` on the caller's stripe.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// Adds `n` (relaxed, on this thread's stripe).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over stripes; monotone across reads).
    pub fn value(&self) -> u64 {
        self.0.stripes.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A point-in-time gauge handle (single atomic; gauges are set, not
/// accumulated, so striping would buy nothing).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One stripe of histogram state: per-bucket counts plus a running
/// sum. Aligned so stripes never share a cache line through the
/// struct itself (bucket vectors are separate allocations).
#[repr(align(64))]
#[derive(Debug)]
struct HistStripe {
    /// `bounds.len() + 1` cells; the last is the `+Inf` overflow.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

#[derive(Debug)]
struct HistCore {
    bounds: &'static [u64],
    stripes: Vec<HistStripe>,
}

/// A fixed-bucket histogram handle. Recording is two relaxed
/// `fetch_add`s (bucket + sum) on the caller's stripe, after a short
/// linear scan of the bounds (≤ 16 entries, branch-predictable).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    fn new(kind: HistKind) -> Self {
        let bounds = kind.bounds();
        let stripes = (0..STRIPES)
            .map(|_| HistStripe {
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
            })
            .collect();
        Histogram(Arc::new(HistCore { bounds, stripes }))
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn observe(&self, v: u64) {
        let core = &*self.0;
        let b = core.bounds.iter().position(|&ub| v <= ub).unwrap_or(core.bounds.len());
        let s = &core.stripes[stripe()];
        s.buckets[b].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The preset bucket upper bounds (without the `+Inf` overflow).
    pub fn bounds(&self) -> &'static [u64] {
        self.0.bounds
    }

    fn read(&self, name: &str) -> HistogramSnapshot {
        let core = &*self.0;
        let mut buckets = vec![0u64; core.bounds.len() + 1];
        let mut sum = 0u64;
        for s in &core.stripes {
            for (acc, cell) in buckets.iter_mut().zip(&s.buckets) {
                *acc += cell.load(Ordering::Relaxed);
            }
            sum += s.sum.load(Ordering::Relaxed);
        }
        // Derive count from the buckets so the rendered `+Inf`
        // cumulative count always equals `_count` exactly, even while
        // recorders are mid-flight.
        let count = buckets.iter().sum();
        HistogramSnapshot { name: name.to_string(), bounds: core.bounds, buckets, count, sum }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A metrics registry: a name-keyed store of counters, gauges, and
/// histograms. The registry mutex guards only *registration* and
/// *snapshotting* — recording through a resolved handle never touches
/// it. The process-wide instance is [`global()`]; local registries
/// can be constructed for tests.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_insert_with(|| Counter(Arc::default())).clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_insert_with(|| Gauge(Arc::default())).clone()
    }

    /// The histogram named `name`, registering it with `kind`'s bucket
    /// preset on first use (later calls return the existing histogram
    /// whatever their `kind`).
    pub fn histogram(&self, name: &str, kind: HistKind) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.entry(name.to_string()).or_insert_with(|| Histogram::new(kind)).clone()
    }

    /// A point-in-time read of every registered metric. Counters are
    /// monotone across successive snapshots; see the crate docs for
    /// the exact consistency contract.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(n, c)| (n.clone(), c.value())).collect(),
            gauges: inner.gauges.iter().map(|(n, g)| (n.clone(), g.value())).collect(),
            histograms: inner.histograms.iter().map(|(n, h)| h.read(n)).collect(),
        }
    }
}

/// The process-wide registry every recording macro writes to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn counter_accumulates_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t");
        thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 40_000);
    }

    #[test]
    fn same_name_same_metric() {
        let reg = Registry::new();
        reg.counter("x").add(2);
        reg.counter("x").add(3);
        assert_eq!(reg.counter("x").value(), 5);
        reg.gauge("g").set(9);
        assert_eq!(reg.gauge("g").value(), 9);
        reg.histogram("h", HistKind::LatencyUs).observe(7);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn histogram_buckets_cover_bounds_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("lat", HistKind::LatencyUs);
        h.observe(0); // first bucket (<= 1)
        h.observe(1); // first bucket boundary is inclusive
        h.observe(2); // second bucket
        h.observe(u64::MAX); // +Inf overflow
        let snap = reg.snapshot().histogram("lat").unwrap().clone();
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(*snap.buckets.last().unwrap(), 1);
        assert_eq!(snap.count, 4);
    }

    #[test]
    fn gauge_is_point_in_time() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn snapshot_counters_never_decrease_under_concurrent_recording() {
        let reg = Registry::new();
        let c = reg.counter("mono");
        let stop = AtomicBool::new(false);
        thread::scope(|s| {
            for _ in 0..3 {
                let c = c.clone();
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        c.inc();
                    }
                });
            }
            let mut last = 0u64;
            for _ in 0..500 {
                let v = reg.snapshot().counter("mono").unwrap();
                assert!(v >= last, "counter went backwards: {v} < {last}");
                last = v;
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
