//! Shard-parallel semi-naive Horn inference on the executor pool.
//!
//! Two entry points, both with a hard determinism contract:
//!
//! * [`par_seed_subclass_facts`] — the parallel counterpart of the
//!   generator's sequential graph-edge seeding. Seed edges are
//!   partitioned by snapshot shard (worker `k` owns every edge whose
//!   source node lives in shard `k`, i.e. `src.index() % shard_count ==
//!   k`); each worker collects its shard's `(LabelId, LabelId)`
//!   subclass pairs into a private scratch table; the merge then
//!   re-maps labels to [`AtomId`]s canonically. The resulting fact
//!   base and atom table are **byte-identical at every shard count and
//!   every thread count**.
//!
//! * [`ParallelEngine`] — semi-naive saturation whose per-round delta
//!   is split into `(clause, delta position, delta range)` work units
//!   evaluated concurrently via
//!   [`CompiledProgram::eval_delta_range`]. Work units are a function
//!   of the delta alone (never of the thread count), results merge in
//!   unit order, and per-unit effort sums are partition-invariant, so
//!   derived fact sets *and* [`InferenceStats`] — including the
//!   per-round counters — are byte-identical at every thread count.
//!
//! ## Merge order (load-bearing, tested)
//!
//! 1. **Seeding**: per-shard results are combined in ascending shard
//!    order; `skipped_dead_nodes` is the sum in that order. The union
//!    of label pairs is sorted by `(LabelId, LabelId)`; endpoint
//!    labels are interned in ascending [`LabelId`] order (the
//!    deterministic id-remap — `LabelId` order is a property of the
//!    graph, not of the partitioning); facts are inserted in sorted
//!    pair order.
//! 2. **Saturation**: each round's unit outputs are concatenated in
//!    unit order — units are ordered by (clause index, delta
//!    position, delta range start) — then deduplicated through
//!    `FactBase::add_fact`, which fixes the next round's delta order.
//!
//! The round-level counters (`rounds[r].delta`, `rounds[r].derived`,
//! `iterations`, `derived`) equal the sequential
//! [`Strategy::SemiNaive`](onion_rules::Strategy) engine's exactly;
//! `atoms_examined` is the parallel engine's own effort measure
//! (delta-first join order examines a different — typically smaller —
//! candidate stream than the sequential body-order join), invariant
//! across shard and thread counts but not comparable across engines.
//! The `seminaive_props` differential suite pins all of this.

use onion_graph::hash::FxHashSet;
use onion_graph::{rel, LabelId, OntGraph};
use onion_rules::infer::{CompiledProgram, DeltaIndex, Fact, RoundStats};
use onion_rules::{AtomId, AtomTable, FactBase, HornProgram, InferenceStats, RuleError};

use crate::Executor;

/// Outcome of one parallel seeding pass over a graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSeedStats {
    /// Facts that were new to the fact base.
    pub seeded: usize,
    /// Edges dropped because an endpoint node was deleted (summed over
    /// shards in ascending shard order).
    pub skipped_dead_nodes: usize,
    /// Shard partitions the scan used (`graph.shard_count()`).
    pub shards: usize,
}

/// Seeds one interned `subclassof` fact per live subclass edge of `g`,
/// scanning shard-parallel on `exec` (see module docs for the
/// partition and merge-order contract). Returns what was seeded.
///
/// The fact *set* equals the sequential
/// [`seed path`](onion_rules::AtomTable::graph_atoms) exactly; atom
/// ids may differ from a sequential seeding (labels are interned in
/// `LabelId` order here, edge order there), but are identical across
/// every `(shard count, thread count)` combination.
pub fn par_seed_subclass_facts(
    exec: &Executor,
    g: &OntGraph,
    atoms: &mut AtomTable,
    fb: &mut FactBase,
) -> ShardSeedStats {
    let shards = g.shard_count().max(1);
    let mut out = ShardSeedStats { seeded: 0, skipped_dead_nodes: 0, shards };
    let Some(sub) = g.label_id(rel::SUBCLASS_OF) else { return out };

    // Fan out: worker k scans the edges owned by snapshot shard k into
    // a private scratch table of label pairs.
    let shard_ids: Vec<usize> = (0..shards).collect();
    let per_shard: Vec<(Vec<(LabelId, LabelId)>, usize)> = exec.par_map(&shard_ids, |&k| {
        let mut seen: FxHashSet<(LabelId, LabelId)> = FxHashSet::default();
        let mut pairs: Vec<(LabelId, LabelId)> = Vec::new();
        let mut skipped = 0usize;
        for (_, src, lid, dst) in g.edge_entries() {
            if lid != sub || src.index() % shards != k {
                continue;
            }
            match (g.node_label_id(src), g.node_label_id(dst)) {
                (Some(s), Some(d)) => {
                    if seen.insert((s, d)) {
                        pairs.push((s, d));
                    }
                }
                _ => skipped += 1,
            }
        }
        (pairs, skipped)
    });

    // Merge in ascending shard order (the documented contract).
    let mut pairs: Vec<(LabelId, LabelId)> = Vec::new();
    for (p, skipped) in per_shard {
        out.skipped_dead_nodes += skipped;
        pairs.extend(p);
    }
    pairs.sort_unstable();
    pairs.dedup();

    // Canonical id-remap: intern endpoint labels in ascending LabelId
    // order, then insert facts in sorted pair order. Both orders are
    // properties of the graph alone, so the AtomIds assigned and the
    // fact base's insertion order are independent of how the scan was
    // partitioned.
    let pred = atoms.intern("subclassof");
    let mut cursor = atoms.graph_atoms(g);
    let mut labels: Vec<LabelId> = pairs.iter().flat_map(|&(s, d)| [s, d]).collect();
    labels.sort_unstable();
    labels.dedup();
    for l in labels {
        cursor.atom(l);
    }
    for (s, d) in pairs {
        let (s, d) = (cursor.atom(s), cursor.atom(d));
        if fb.add_fact(pred, vec![s, d]) {
            out.seeded += 1;
        }
    }
    out
}

/// Semi-naive forward chaining with each round's delta evaluated in
/// parallel work units on an [`Executor`] (see module docs for the
/// determinism contract).
#[derive(Debug, Clone)]
pub struct ParallelEngine {
    program: HornProgram,
    /// Abort once this many facts have been derived (0 = unlimited).
    pub max_derived: usize,
    /// Abort after this many rounds (0 = unlimited).
    pub max_iterations: usize,
}

/// Target number of range units per (clause, delta position) slot —
/// enough to keep a pool busy without drowning small rounds in
/// per-unit overhead. A function of the delta size only, NEVER of the
/// thread count: the unit grid must be identical for every executor.
const DELTA_UNITS: usize = 32;
/// Smallest delta range worth dispatching as its own unit.
const MIN_UNIT: usize = 64;

impl ParallelEngine {
    /// Engine for `program` with no budget.
    pub fn new(program: HornProgram) -> Self {
        ParallelEngine { program, max_derived: 0, max_iterations: 0 }
    }

    /// Sets the derivation budget (same semantics as the sequential
    /// engine's `with_budget`).
    pub fn with_budget(mut self, max_derived: usize, max_iterations: usize) -> Self {
        self.max_derived = max_derived;
        self.max_iterations = max_iterations;
        self
    }

    /// Runs the program to fixpoint on `fb`, adding derived facts.
    ///
    /// `iterations`, `derived`, and the per-round `delta`/`derived`
    /// counters equal the sequential semi-naive engine's; the whole
    /// [`InferenceStats`] — `atoms_examined` included — is
    /// byte-identical across thread counts.
    pub fn run(
        &self,
        exec: &Executor,
        atoms: &mut AtomTable,
        fb: &mut FactBase,
    ) -> onion_rules::Result<InferenceStats> {
        let compiled = CompiledProgram::compile(&self.program, atoms)?;
        let mut stats = InferenceStats::default();
        stats.derived = compiled.fire_ground(fb).len();
        // Round one joins against everything, in the same canonical
        // order as the sequential engine.
        let mut delta: Vec<Fact> = fb.facts_in_pred_order();
        let shapes = compiled.rule_shapes();
        let mut merge_pushes = 0usize;

        loop {
            stats.iterations += 1;
            if self.max_iterations != 0 && stats.iterations > self.max_iterations {
                return Err(RuleError::BudgetExceeded { derived: stats.derived });
            }
            let round_delta = delta.len();
            let dix = DeltaIndex::build(&delta);

            // The unit grid: (clause, delta position, delta range),
            // ordered by construction. Range width depends on the
            // delta size alone.
            let chunk = delta.len().div_ceil(DELTA_UNITS).max(MIN_UNIT);
            let mut units: Vec<(usize, usize, usize, usize)> = Vec::new();
            for &(ci, blen) in &shapes {
                for d in 0..blen {
                    let mut lo = 0;
                    while lo < delta.len() {
                        let hi = (lo + chunk).min(delta.len());
                        units.push((ci, d, lo, hi));
                        lo = hi;
                    }
                }
            }

            let fbr: &FactBase = fb;
            let results: Vec<(Vec<Fact>, usize)> = exec.par_map(&units, |&(ci, d, lo, hi)| {
                let mut out = Vec::new();
                let mut effort = 0usize;
                compiled.eval_delta_range(fbr, &dix, ci, d, lo, hi, &mut out, &mut effort);
                (out, effort)
            });
            drop(dix);
            // Work-unit imbalance: the hottest unit's effort relative
            // to the mean, in percent (100 = perfectly balanced).
            // Observational only — partition-invariant like the stats.
            if onion_obs::enabled() && !results.is_empty() {
                let max = results.iter().map(|&(_, e)| e).max().unwrap_or(0);
                let avg = results.iter().map(|&(_, e)| e).sum::<usize>() / results.len();
                if avg > 0 {
                    onion_obs::observe_val!("onion_inference_unit_imbalance_pct", max * 100 / avg);
                }
            }

            // Merge in unit order: effort sums are partition-invariant,
            // and add_fact dedup fixes the next delta's order. Every
            // fact pushed through this single barrier (duplicates
            // included) counts toward the one-entry merge ledger —
            // the serial work the shard-local engine distributes.
            let mut round_examined = 0usize;
            let mut added: Vec<Fact> = Vec::new();
            for (new_facts, effort) in results {
                round_examined += effort;
                for f in new_facts {
                    merge_pushes += 1;
                    if fb.add_fact(f.0, f.1.clone()) {
                        stats.derived += 1;
                        if self.max_derived != 0 && stats.derived > self.max_derived {
                            return Err(RuleError::BudgetExceeded { derived: stats.derived });
                        }
                        added.push(f);
                    }
                }
            }
            stats.atoms_examined += round_examined;
            stats.rounds.push(RoundStats {
                delta: round_delta,
                derived: added.len(),
                examined: round_examined,
            });
            if added.is_empty() {
                break;
            }
            delta = added;
        }
        // One worker, one barrier: the whole emitted stream funnelled
        // through the serial merge above.
        stats.worker_merge_facts = vec![merge_pushes];
        onion_rules::infer::record_run_metrics(&stats);
        Ok(stats)
    }
}

/// An order-insensitive checksum of a fact base's contents resolved
/// against `atoms` — equal across runs whose fact *sets* are equal,
/// whatever the interning order. Bench B12 asserts engine identity
/// with this before timing.
pub fn fact_set_checksum(atoms: &AtomTable, fb: &FactBase) -> u64 {
    let mut acc: u64 = 0;
    for (pred, args) in fb.facts_in_pred_order() {
        let mut h = crate::Fnv::new();
        mix_atom(&mut h, atoms, pred);
        for a in args {
            mix_atom(&mut h, atoms, a);
        }
        // XOR-fold per fact: set semantics, not sequence semantics
        acc ^= h.finish();
    }
    acc
}

fn mix_atom(h: &mut crate::Fnv, atoms: &AtomTable, a: AtomId) {
    h.mix_bytes(atoms.resolve(a).as_bytes());
    h.mix(0xff); // separator
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (AtomTable, FactBase) {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        for i in 0..n {
            fb.add(&mut atoms, "p", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        (atoms, fb)
    }

    fn transitivity() -> HornProgram {
        HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap()
    }

    #[test]
    fn parallel_closure_matches_sequential() {
        let n = 24;
        let (mut atoms_seq, mut fb_seq) = chain(n);
        let seq = onion_rules::InferenceEngine::new(transitivity())
            .run(&mut atoms_seq, &mut fb_seq)
            .unwrap();
        for threads in [1, 2, 4] {
            let exec = Executor::new(threads);
            let (mut atoms, mut fb) = chain(n);
            let par = ParallelEngine::new(transitivity()).run(&exec, &mut atoms, &mut fb).unwrap();
            assert_eq!(fb.len(), fb_seq.len(), "threads={threads}");
            assert_eq!(par.derived, seq.derived);
            assert_eq!(par.iterations, seq.iterations);
            let seq_rounds: Vec<(usize, usize)> =
                seq.rounds.iter().map(|r| (r.delta, r.derived)).collect();
            let par_rounds: Vec<(usize, usize)> =
                par.rounds.iter().map(|r| (r.delta, r.derived)).collect();
            assert_eq!(par_rounds, seq_rounds, "threads={threads}");
            assert_eq!(
                fact_set_checksum(&atoms, &fb),
                fact_set_checksum(&atoms_seq, &fb_seq),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_stats_identical_across_thread_counts() {
        let (mut a1, mut f1) = chain(40);
        let s1 = ParallelEngine::new(transitivity()).run(&Executor::new(1), &mut a1, &mut f1);
        let (mut a2, mut f2) = chain(40);
        let s2 = ParallelEngine::new(transitivity()).run(&Executor::new(4), &mut a2, &mut f2);
        assert_eq!(s1.unwrap(), s2.unwrap(), "full stats byte-identical across thread counts");
        assert_eq!(f1.facts_in_pred_order(), f2.facts_in_pred_order(), "same facts, same ids");
    }

    #[test]
    fn parallel_budget_errors_match_sequential() {
        let (mut atoms, mut fb) = chain(50);
        let err = ParallelEngine::new(transitivity())
            .with_budget(10, 0)
            .run(&Executor::new(2), &mut atoms, &mut fb)
            .unwrap_err();
        assert!(matches!(err, RuleError::BudgetExceeded { derived } if derived > 10));
        let (mut atoms, mut fb) = chain(50);
        let err = ParallelEngine::new(transitivity())
            .with_budget(0, 2)
            .run(&Executor::new(2), &mut atoms, &mut fb)
            .unwrap_err();
        assert!(matches!(err, RuleError::BudgetExceeded { .. }));
    }

    #[test]
    fn par_seed_identical_across_shard_counts() {
        let mut edges = Vec::new();
        for i in 0..30 {
            edges.push((format!("c{i}"), format!("c{}", (i * 7) % 30)));
        }
        let mut baseline: Option<(usize, Vec<Fact>)> = None;
        for shards in [1usize, 2, 7, 64] {
            let mut g = OntGraph::new("s");
            for (a, b) in &edges {
                g.ensure_edge_by_labels(a, rel::SUBCLASS_OF, b).unwrap();
            }
            g.set_shard_count(shards);
            let mut atoms = AtomTable::new();
            let mut fb = FactBase::new();
            let s = par_seed_subclass_facts(&Executor::new(2), &g, &mut atoms, &mut fb);
            assert_eq!(s.shards, shards);
            let facts = fb.facts_in_pred_order();
            assert_eq!(s.seeded, facts.len());
            match &baseline {
                None => baseline = Some((s.seeded, facts)),
                Some((seeded, base)) => {
                    assert_eq!(s.seeded, *seeded, "shards={shards}");
                    assert_eq!(&facts, base, "identical atom ids at shards={shards}");
                }
            }
        }
    }
}
