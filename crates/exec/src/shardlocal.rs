//! Shard-local semi-naive saturation: per-worker atom tables, per-pair
//! delta mailboxes, one canonical fold at fixpoint.
//!
//! [`ParallelEngine`](crate::ParallelEngine) parallelises each round's
//! *joins* but still funnels every derived fact through one shared
//! [`AtomTable`] and one global [`FactBase`] at a per-round barrier —
//! the merge grows with the delta and serialises exactly the part the
//! work units parallelised. [`ShardLocalEngine`] removes that barrier:
//!
//! * **Partitioned seeding** ([`par_seed_subclass_partitions`]): worker
//!   `k` owns every edge whose source node lives in snapshot shard `k`
//!   (the same `src.index() % shards` partitioning as
//!   [`par_seed_subclass_facts`](crate::par_seed_subclass_facts)) and
//!   interns endpoints into **its own** [`AtomTable`] — no shared
//!   table, no lock, and per-worker intern counts are recorded.
//! * **One sync point**: partition tables fold into an internal *wire*
//!   table via [`AtomTable::merge_remap`] (ascending partition order),
//!   the program compiles once against it, and per-atom fact ownership
//!   (`hash(subject parts) % shards`, see
//!   [`onion_rules::sharded::owner_of_parts`]) is precomputed.
//! * **Shard-local rounds**: each worker runs the semi-naive delta
//!   evaluation for the delta facts *it owns* against its own full
//!   replica of the store, then routes emitted facts into **per-pair
//!   mailboxes** (one `sender → owner` list per worker pair). Owners
//!   drain their mailboxes in ascending sender order (the fixed-order
//!   drain that keeps round profiles deterministic) and dedup against
//!   their replica — so global per-round dedup work is split by
//!   ownership instead of serialised through one store.
//! * **Remap at fixpoint**: the only touch of the canonical table is
//!   one [`AtomTable::merge_remap`] fold after saturation; novel facts
//!   are inserted into the canonical [`FactBase`] sorted by canonical
//!   `(pred, args)` ids, so the final fact sequence is identical at
//!   every shard and thread count.
//!
//! ## Determinism contract (tested by `seminaive_props`)
//!
//! Derived fact *sets*, the canonical table after the fold, and the
//! whole per-round ledger (`delta`/`derived`/`examined`) are functions
//! of (delta set, store set) per round — invariant under any
//! partitioning — so they are byte-identical across every shard count
//! {1, 2, 7, 64} and thread count {1, 2, 4}, equal to
//! [`ParallelEngine`](crate::ParallelEngine)'s (same delta-first join),
//! and equal to the sequential engine's on `iterations`, `derived`,
//! and per-round `delta`/`derived` (`atoms_examined` differs from the
//! sequential body-order join by design — the documented
//! [`ParallelEngine`](crate::ParallelEngine) precedent). On the engine
//! path (`run`), the canonical [`AtomTable`] ends byte-identical to a
//! sequential run's: saturation introduces no symbols beyond the seeds
//! and the program's own constants, so the fixpoint fold interns
//! nothing new.
//!
//! The per-worker ledgers land in
//! [`InferenceStats::worker_merge_facts`] (owned arrivals scanned at
//! each owner's dedup; sums to the parallel engine's single-barrier
//! push count) and [`InferenceStats::worker_interned`] (symbols
//! interned per worker-local table during seeding) — the counters B16
//! asserts to show the global merge work eliminated even on a
//! single-core host.

use std::collections::HashSet;

use onion_graph::hash::FxHashSet;
use onion_graph::{rel, LabelId, OntGraph};
use onion_rules::infer::{CompiledProgram, DeltaIndex, Fact, RoundStats};
use onion_rules::sharded::owner_map;
use onion_rules::ShardedFactBase;
use onion_rules::{AtomId, AtomTable, FactBase, HornProgram, InferenceStats, RuleError};

use crate::inference::ShardSeedStats;
use crate::Executor;

/// Seeds one `subclassof` fact per live subclass edge of `g` into the
/// partitions of `sfb`, each worker interning into **its own**
/// partition-local table (module docs). The partition a fact lands in
/// is the snapshot shard of its source node — the same partitioning as
/// [`par_seed_subclass_facts`](crate::par_seed_subclass_facts) — which
/// is independent of the ownership hash the engine routes by; the
/// engine unions all partitions before round one, so initial placement
/// only determines *which worker does the interning*.
///
/// Per-partition contents are a function of the graph and the
/// partition count alone (pairs sorted, labels interned in ascending
/// `LabelId` order), never of the thread count.
pub fn par_seed_subclass_partitions(
    exec: &Executor,
    g: &OntGraph,
    sfb: &mut ShardedFactBase,
) -> ShardSeedStats {
    let shards = sfb.shards();
    let mut out = ShardSeedStats { seeded: 0, skipped_dead_nodes: 0, shards };
    let Some(sub) = g.label_id(rel::SUBCLASS_OF) else { return out };
    let mut counters = vec![(0usize, 0usize); shards];
    exec.pool().scope(|s| {
        for (k, (part, ctr)) in sfb.partitions_mut().iter_mut().zip(counters.iter_mut()).enumerate()
        {
            s.spawn(move |_| {
                let mut seen: FxHashSet<(LabelId, LabelId)> = FxHashSet::default();
                let mut pairs: Vec<(LabelId, LabelId)> = Vec::new();
                let mut skipped = 0usize;
                for (_, src, lid, dst) in g.edge_entries() {
                    if lid != sub || src.index() % shards != k {
                        continue;
                    }
                    match (g.node_label_id(src), g.node_label_id(dst)) {
                        (Some(sl), Some(dl)) => {
                            if seen.insert((sl, dl)) {
                                pairs.push((sl, dl));
                            }
                        }
                        _ => skipped += 1,
                    }
                }
                pairs.sort_unstable();
                // intern into the PARTITION'S table: predicate first,
                // then endpoint labels ascending, then facts in sorted
                // pair order — same canonical sub-order as the shared
                // -table seeder, applied per partition
                let before = part.atoms.len();
                let pred = part.atoms.intern("subclassof");
                let mut cursor = part.atoms.graph_atoms(g);
                let mut labels: Vec<LabelId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
                labels.sort_unstable();
                labels.dedup();
                for l in labels {
                    cursor.atom(l);
                }
                let mut seeded = 0usize;
                for (sl, dl) in pairs {
                    let (a, b) = (cursor.atom(sl), cursor.atom(dl));
                    if part.facts.add_fact(pred, vec![a, b]) {
                        seeded += 1;
                    }
                }
                drop(cursor);
                part.interned += part.atoms.len() - before;
                *ctr = (seeded, skipped);
            });
        }
    });
    for (seeded, skipped) in counters {
        out.seeded += seeded;
        out.skipped_dead_nodes += skipped;
    }
    out
}

/// Per-worker state during saturation: a full replica of the (wire-id)
/// store plus round-scoped scratch.
struct Worker {
    /// Full replica of the global store — local joins never touch a
    /// shared structure.
    store: FactBase,
    /// Per-pair mailboxes: `outbox[j]` holds the facts this worker
    /// emitted this round that partition `j` owns.
    outbox: Vec<Vec<Fact>>,
    /// Flat emission scratch, routed into `outbox` after evaluation.
    emit: Vec<Fact>,
    /// Join effort this round (candidate facts examined).
    effort: usize,
    /// Cumulative owned arrivals scanned at this worker's dedup —
    /// `InferenceStats::worker_merge_facts[k]`.
    merge_facts: usize,
    /// Same-round duplicate filter (facts not yet in the replica).
    seen: HashSet<Fact>,
}

/// Semi-naive saturation with shard-local stores, per-pair delta
/// mailboxes, and a single canonical fold at fixpoint (module docs).
#[derive(Debug, Clone)]
pub struct ShardLocalEngine {
    program: HornProgram,
    shards: usize,
    /// Abort once this many facts have been derived (0 = unlimited).
    pub max_derived: usize,
    /// Abort after this many rounds (0 = unlimited).
    pub max_iterations: usize,
}

impl ShardLocalEngine {
    /// Engine for `program`, one partition, no budget.
    pub fn new(program: HornProgram) -> Self {
        ShardLocalEngine { program, shards: 1, max_derived: 0, max_iterations: 0 }
    }

    /// Sets the partition count (min 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the derivation budget (same semantics as the other
    /// engines' `with_budget`).
    pub fn with_budget(mut self, max_derived: usize, max_iterations: usize) -> Self {
        self.max_derived = max_derived;
        self.max_iterations = max_iterations;
        self
    }

    /// Runs the program to fixpoint on `fb`, adding derived facts —
    /// the drop-in counterpart of the other engines' `run`. Partitions
    /// `fb` by ownership internally, saturates shard-locally, and
    /// folds back (module docs for what is byte-identical to whom).
    pub fn run(
        &self,
        exec: &Executor,
        atoms: &mut AtomTable,
        fb: &mut FactBase,
    ) -> onion_rules::Result<InferenceStats> {
        let mut sfb = ShardedFactBase::new(self.shards);
        self.run_partitioned(exec, &mut sfb, atoms, fb)
    }

    /// Runs to fixpoint over pre-seeded partitions (the generator
    /// path: [`par_seed_subclass_partitions`] filled `sfb`, while `fb`
    /// holds the canonically-interned bridge and rule facts). Facts in
    /// `fb` are absorbed into their owner partitions first; at
    /// fixpoint, everything derived lands back in `fb` through the
    /// canonical remap.
    pub fn run_partitioned(
        &self,
        exec: &Executor,
        sfb: &mut ShardedFactBase,
        atoms: &mut AtomTable,
        fb: &mut FactBase,
    ) -> onion_rules::Result<InferenceStats> {
        let shards = sfb.shards();
        let mut stats = InferenceStats::default();

        // Compile against the CANONICAL table first: this interns the
        // program's predicates and constants exactly where a
        // sequential run would, which is what makes the engine path's
        // final canonical table byte-identical to the sequential
        // engine's. Ground-fact clauses fire straight into `fb`.
        let canon_compiled = CompiledProgram::compile(&self.program, atoms)?;
        stats.derived = canon_compiled.fire_ground(fb).len();
        sfb.absorb(atoms, fb);

        // ---- the one sync point: local tables → wire table ----
        let mut wire = AtomTable::new();
        let remaps: Vec<Vec<AtomId>> =
            sfb.partitions().iter().map(|p| wire.merge_remap(&p.atoms)).collect();
        let compiled = CompiledProgram::compile(&self.program, &mut wire)?;
        let shapes = compiled.rule_shapes();
        // ownership of every wire atom, precomputed (saturation derives
        // no new symbols — heads recombine seed atoms and compiled
        // constants)
        let owner: Vec<u32> = owner_map(&wire, shards);

        // The union store in wire ids, folded in ascending partition
        // order; every worker gets a full replica.
        let mut base = FactBase::new();
        let mut scratch: Vec<Fact> = Vec::new();
        for (part, remap) in sfb.partitions().iter().zip(&remaps) {
            part.facts.facts_in_pred_order_into(&mut scratch);
            for (p, args) in scratch.drain(..) {
                let wargs: Vec<AtomId> = args.iter().map(|&a| remap[a.index()]).collect();
                base.add_fact(remap[p.index()], wargs);
            }
        }
        let mut workers: Vec<Worker> = (0..shards)
            .map(|_| Worker {
                store: base.clone(),
                outbox: vec![Vec::new(); shards],
                emit: Vec::new(),
                effort: 0,
                merge_facts: 0,
                seen: HashSet::new(),
            })
            .collect();

        // Round-one delta: the whole store, grouped by owner (contiguous
        // per-owner ranges), pred-order preserved within each owner.
        let mut per_owner: Vec<Vec<Fact>> = vec![Vec::new(); shards];
        base.facts_in_pred_order_into(&mut scratch);
        for f in scratch.drain(..) {
            let k = f.1.first().map(|a| owner[a.index()] as usize).unwrap_or(0);
            per_owner[k].push(f);
        }

        let mut round_delta: Vec<Fact> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(shards);
        loop {
            stats.iterations += 1;
            if self.max_iterations != 0 && stats.iterations > self.max_iterations {
                return Err(RuleError::BudgetExceeded { derived: stats.derived });
            }
            // Concatenate per-owner deltas in ascending owner order;
            // worker k's slice is `ranges[k]`.
            round_delta.clear();
            ranges.clear();
            for v in per_owner.iter_mut() {
                let lo = round_delta.len();
                round_delta.append(v);
                ranges.push((lo, round_delta.len()));
            }
            let dix = DeltaIndex::build(&round_delta);

            // Evaluate: worker k joins ITS delta facts against ITS
            // replica, routing emissions into per-pair mailboxes.
            exec.pool().scope(|s| {
                for (k, w) in workers.iter_mut().enumerate() {
                    let (lo, hi) = ranges[k];
                    let (compiled, dix, shapes, owner) = (&compiled, &dix, &shapes, &owner);
                    s.spawn(move |_| {
                        let Worker { store, outbox, emit, effort, .. } = w;
                        *effort = 0;
                        for &(ci, blen) in shapes {
                            for d in 0..blen {
                                compiled.eval_delta_range(store, dix, ci, d, lo, hi, emit, effort);
                            }
                        }
                        for mb in outbox.iter_mut() {
                            mb.clear();
                        }
                        for f in emit.drain(..) {
                            let to = f.1.first().map(|a| owner[a.index()] as usize).unwrap_or(0);
                            outbox[to].push(f);
                        }
                    });
                }
            });
            drop(dix);
            let round_examined: usize = workers.iter().map(|w| w.effort).sum();

            // Exchange: owner k drains mailbox (j → k) for j ascending
            // — the fixed drain order — deduping against its replica.
            let outboxes: Vec<Vec<Vec<Fact>>> =
                workers.iter_mut().map(|w| std::mem::take(&mut w.outbox)).collect();
            exec.pool().scope(|s| {
                for ((k, w), slot) in workers.iter_mut().enumerate().zip(per_owner.iter_mut()) {
                    let outboxes = &outboxes;
                    s.spawn(move |_| {
                        let Worker { store, merge_facts, seen, .. } = w;
                        seen.clear();
                        for sender in outboxes {
                            for f in &sender[k] {
                                *merge_facts += 1;
                                if store.contains_fact(f.0, &f.1) || seen.contains(f) {
                                    continue;
                                }
                                seen.insert(f.clone());
                                slot.push(f.clone());
                            }
                        }
                    });
                }
            });
            for (w, ob) in workers.iter_mut().zip(outboxes) {
                w.outbox = ob; // reuse mailbox allocations next round
            }

            let derived_round: usize = per_owner.iter().map(Vec::len).sum();
            stats.derived += derived_round;
            if self.max_derived != 0 && stats.derived > self.max_derived {
                return Err(RuleError::BudgetExceeded { derived: stats.derived });
            }
            stats.atoms_examined += round_examined;
            stats.rounds.push(RoundStats {
                delta: round_delta.len(),
                derived: derived_round,
                examined: round_examined,
            });
            if derived_round == 0 {
                break;
            }
            // Fold the round's accepted facts into every replica
            // (ascending owner order). Owner routing guarantees the
            // lists are disjoint and globally novel.
            exec.pool().scope(|s| {
                for w in workers.iter_mut() {
                    let per_owner = &per_owner;
                    s.spawn(move |_| {
                        for list in per_owner {
                            for f in list {
                                w.store.add_fact(f.0, f.1.clone());
                            }
                        }
                    });
                }
            });
        }

        // ---- remap at fixpoint: the only canonical-table touch ----
        let remap = atoms.merge_remap(&wire);
        let mut novel: Vec<Fact> = Vec::new();
        workers[0].store.facts_in_pred_order_into(&mut scratch);
        for (p, args) in scratch.drain(..) {
            let cargs: Vec<AtomId> = args.iter().map(|&a| remap[a.index()]).collect();
            let cp = remap[p.index()];
            if !fb.contains_fact(cp, &cargs) {
                novel.push((cp, cargs));
            }
        }
        // canonical-id sort: the insertion order is a function of the
        // derived set alone, identical at every shard/thread count
        novel.sort_unstable();
        for (p, args) in novel {
            fb.add_fact(p, args);
        }
        stats.worker_merge_facts = workers.iter().map(|w| w.merge_facts).collect();
        stats.worker_interned = sfb.interned_per_partition();
        onion_rules::infer::record_run_metrics(&stats);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact_set_checksum;

    fn chain(n: usize) -> (AtomTable, FactBase) {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        for i in 0..n {
            fb.add(&mut atoms, "p", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        (atoms, fb)
    }

    fn transitivity() -> HornProgram {
        HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap()
    }

    #[test]
    fn shardlocal_closure_matches_sequential() {
        let n = 24;
        let (mut atoms_seq, mut fb_seq) = chain(n);
        let seq = onion_rules::InferenceEngine::new(transitivity())
            .run(&mut atoms_seq, &mut fb_seq)
            .unwrap();
        for shards in [1usize, 2, 7] {
            for threads in [1usize, 2, 4] {
                let exec = Executor::new(threads);
                let (mut atoms, mut fb) = chain(n);
                let sl = ShardLocalEngine::new(transitivity())
                    .with_shards(shards)
                    .run(&exec, &mut atoms, &mut fb)
                    .unwrap();
                let tag = format!("shards={shards} threads={threads}");
                assert_eq!(fb.len(), fb_seq.len(), "{tag}");
                assert_eq!(sl.derived, seq.derived, "{tag}");
                assert_eq!(sl.iterations, seq.iterations, "{tag}");
                let seq_rounds: Vec<(usize, usize)> =
                    seq.rounds.iter().map(|r| (r.delta, r.derived)).collect();
                let sl_rounds: Vec<(usize, usize)> =
                    sl.rounds.iter().map(|r| (r.delta, r.derived)).collect();
                assert_eq!(sl_rounds, seq_rounds, "{tag}");
                assert_eq!(
                    fact_set_checksum(&atoms, &fb),
                    fact_set_checksum(&atoms_seq, &fb_seq),
                    "{tag}"
                );
                // engine path: canonical table byte-identical too
                assert_eq!(atoms.len(), atoms_seq.len(), "{tag}");
            }
        }
    }

    #[test]
    fn shardlocal_rounds_match_parallel_engine_exactly() {
        // same delta-first join ⇒ the full per-round ledger (examined
        // included) and the merge-stream total equal ParallelEngine's
        let (mut pa, mut pf) = chain(40);
        let par = crate::ParallelEngine::new(transitivity())
            .run(&Executor::new(2), &mut pa, &mut pf)
            .unwrap();
        for shards in [1usize, 4] {
            let (mut a, mut f) = chain(40);
            let sl = ShardLocalEngine::new(transitivity())
                .with_shards(shards)
                .run(&Executor::new(2), &mut a, &mut f)
                .unwrap();
            assert_eq!(sl.rounds, par.rounds, "shards={shards}");
            assert_eq!(sl.atoms_examined, par.atoms_examined, "shards={shards}");
            assert_eq!(
                sl.worker_merge_facts.iter().sum::<usize>(),
                par.worker_merge_facts.iter().sum::<usize>(),
                "same merge stream, distributed (shards={shards})"
            );
            assert_eq!(sl.worker_merge_facts.len(), shards);
        }
    }

    #[test]
    fn shardlocal_stats_identical_across_thread_counts() {
        let run = |threads: usize| {
            let (mut a, mut f) = chain(40);
            let s = ShardLocalEngine::new(transitivity())
                .with_shards(4)
                .run(&Executor::new(threads), &mut a, &mut f)
                .unwrap();
            (s, f.facts_in_pred_order())
        };
        let (s1, f1) = run(1);
        let (s4, f4) = run(4);
        assert_eq!(s1, s4, "full stats (worker vectors included) across thread counts");
        assert_eq!(f1, f4, "same facts, same ids, same order");
    }

    #[test]
    fn shardlocal_budget_errors_match_sequential() {
        let (mut atoms, mut fb) = chain(50);
        let err = ShardLocalEngine::new(transitivity())
            .with_shards(4)
            .with_budget(10, 0)
            .run(&Executor::new(2), &mut atoms, &mut fb)
            .unwrap_err();
        assert!(matches!(err, RuleError::BudgetExceeded { derived } if derived > 10));
        let (mut atoms, mut fb) = chain(50);
        let err = ShardLocalEngine::new(transitivity())
            .with_shards(4)
            .with_budget(0, 2)
            .run(&Executor::new(2), &mut atoms, &mut fb)
            .unwrap_err();
        assert!(matches!(err, RuleError::BudgetExceeded { .. }));
    }

    #[test]
    fn partition_seeding_matches_shared_table_seeding() {
        let mut g = OntGraph::new("s");
        for i in 0..30 {
            let (a, b) = (format!("c{i}"), format!("c{}", (i * 7) % 30));
            g.ensure_edge_by_labels(&a, rel::SUBCLASS_OF, &b).unwrap();
        }
        // shared-table baseline
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let base = crate::par_seed_subclass_facts(&Executor::new(2), &g, &mut atoms, &mut fb);
        let base_sum = fact_set_checksum(&atoms, &fb);
        for shards in [1usize, 2, 7, 64] {
            for threads in [1usize, 4] {
                let mut sfb = ShardedFactBase::new(shards);
                let s = par_seed_subclass_partitions(&Executor::new(threads), &g, &mut sfb);
                assert_eq!(s.seeded, base.seeded, "shards={shards}");
                assert_eq!(s.skipped_dead_nodes, base.skipped_dead_nodes);
                assert_eq!(sfb.total_facts(), fb.len());
                // fold through an empty engine run: the fact set must
                // equal the shared-table seeding's
                let mut catoms = AtomTable::new();
                let mut cfb = FactBase::new();
                ShardLocalEngine::new(HornProgram::new())
                    .with_shards(shards)
                    .run_partitioned(&Executor::new(threads), &mut sfb, &mut catoms, &mut cfb)
                    .unwrap();
                assert_eq!(
                    fact_set_checksum(&catoms, &cfb),
                    base_sum,
                    "shards={shards} threads={threads}"
                );
                let interned: usize = sfb.interned_per_partition().iter().sum();
                assert!(interned >= 30, "workers interned locally (shards={shards})");
            }
        }
    }

    #[test]
    fn empty_partition_run_is_a_fixpoint_noop() {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let stats = ShardLocalEngine::new(transitivity())
            .with_shards(4)
            .run(&Executor::new(2), &mut atoms, &mut fb)
            .unwrap();
        assert_eq!(stats.derived, 0);
        assert_eq!(stats.iterations, 1);
        assert!(fb.is_empty());
    }

    #[test]
    fn merge_counters_distribute_with_shards() {
        let (mut a1, mut f1) = chain(40);
        let one = ShardLocalEngine::new(transitivity())
            .with_shards(1)
            .run(&Executor::new(1), &mut a1, &mut f1)
            .unwrap();
        let (mut a4, mut f4) = chain(40);
        let four = ShardLocalEngine::new(transitivity())
            .with_shards(4)
            .run(&Executor::new(1), &mut a4, &mut f4)
            .unwrap();
        let total: usize = one.worker_merge_facts.iter().sum();
        assert_eq!(total, four.worker_merge_facts.iter().sum::<usize>());
        let max4 = four.worker_merge_facts.iter().copied().max().unwrap();
        assert!(
            max4 < total,
            "the per-round merge work is split across owners: max {max4} vs total {total}"
        );
    }
}
