//! Epoch-keyed hot-result cache for the query serving path.
//!
//! A [`ResultCache`] memoises expensive per-query artifacts (the facade
//! stores whole `ResultSet`s) under a [`CacheKey`] of
//! `(scope, epoch, canonical query)`. The epoch is the invalidation
//! contract: every publish or mutation bumps it, so a cached value can
//! be validated with one integer compare and stale entries simply stop
//! being addressable — there is no explicit invalidation path to get
//! wrong. The full canonical query string (not a hash of it) lives in
//! the key, so a 64-bit hash collision can never alias two different
//! queries to the same entry.
//!
//! Internally the cache is **striped**: the key hash picks one of up to
//! 16 independently locked stripes, so concurrent readers on a batch
//! executor rarely contend on the same mutex. Each stripe bounds its
//! entry count and evicts with the **CLOCK** (second-chance) sweep — a
//! ref bit per slot, set on hit, cleared as the hand passes; the first
//! un-referenced slot is replaced. CLOCK gives LRU-like retention with
//! O(1) amortised eviction and no per-access list surgery.
//!
//! Hit/miss/insert/evict counts are kept in relaxed atomics (cheap
//! enough to leave always-on) and mirrored to `onion-obs` counters
//! (`onion_query_cache_*`) when recording is enabled, which puts them
//! in the Prometheus and JSON exports for free.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: scope (graph / system id) + epoch + canonical query text.
///
/// Equality is exact on all three fields; the epoch component is what
/// makes invalidation free (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Which graph or system the entry belongs to.
    pub scope: String,
    /// The state epoch the value was computed at.
    pub epoch: u64,
    /// The canonical (display-form) query text.
    pub query: String,
}

impl CacheKey {
    /// Builds a key from its three components.
    pub fn new(scope: impl Into<String>, epoch: u64, query: impl Into<String>) -> Self {
        CacheKey { scope: scope.into(), epoch, query: query.into() }
    }
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (including epoch-mismatched keys).
    pub misses: u64,
    /// Values stored (first insert or overwrite of a live key).
    pub insertions: u64,
    /// Entries displaced by the CLOCK sweep to make room.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Estimated bytes held by live entries right now.
    pub bytes: usize,
    /// Maximum entries the cache will hold.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups, `0.0` when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot<V> {
    key: CacheKey,
    value: Arc<V>,
    bytes: usize,
    referenced: bool,
}

struct Stripe<V> {
    /// CLOCK ring; bounded at the stripe's share of the capacity.
    slots: Vec<Slot<V>>,
    /// Key → slot index within `slots`.
    index: HashMap<CacheKey, usize>,
    /// The CLOCK hand: next slot the eviction sweep examines.
    hand: usize,
}

impl<V> Stripe<V> {
    fn new() -> Self {
        Stripe { slots: Vec::new(), index: HashMap::new(), hand: 0 }
    }
}

/// Sharded, bounded, epoch-keyed result cache. See the module docs.
pub struct ResultCache<V> {
    stripes: Vec<Mutex<Stripe<V>>>,
    /// Entry bound per stripe (total capacity / stripe count).
    per_stripe: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
}

impl<V> std::fmt::Debug for ResultCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("stripes", &self.stripes.len())
            .field("stats", &s)
            .finish()
    }
}

impl<V> ResultCache<V> {
    /// A cache bounded at `capacity` entries (min 1), striped across up
    /// to 16 locks.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // no more stripes than capacity, so every stripe holds >= 1
        let stripes = capacity.min(16).next_power_of_two().min(16);
        let per_stripe = capacity.div_ceil(stripes);
        ResultCache {
            stripes: (0..stripes).map(|_| Mutex::new(Stripe::new())).collect(),
            per_stripe,
            capacity: per_stripe * stripes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// The entry bound (rounded up to a multiple of the stripe count).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn stripe_of(&self, key: &CacheKey) -> &Mutex<Stripe<V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) & (self.stripes.len() - 1)]
    }

    /// Looks `key` up, marking the entry recently-used on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<V>> {
        let mut stripe = self.stripe_of(key).lock().expect("cache stripe poisoned");
        match stripe.index.get(key).copied() {
            Some(i) => {
                stripe.slots[i].referenced = true;
                let v = Arc::clone(&stripe.slots[i].value);
                drop(stripe);
                self.hits.fetch_add(1, Ordering::Relaxed);
                onion_obs::count!("onion_query_cache_hits_total");
                Some(v)
            }
            None => {
                drop(stripe);
                self.misses.fetch_add(1, Ordering::Relaxed);
                onion_obs::count!("onion_query_cache_misses_total");
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting (CLOCK second-chance) if
    /// the stripe is at its bound. `bytes` is the caller's size
    /// estimate, tracked in [`CacheStats::bytes`] and the
    /// `onion_query_cache_bytes` gauge.
    pub fn insert(&self, key: CacheKey, value: Arc<V>, bytes: usize) {
        let mut evicted = false;
        {
            let mut stripe = self.stripe_of(&key).lock().expect("cache stripe poisoned");
            if let Some(&i) = stripe.index.get(&key) {
                // overwrite in place (same key, e.g. re-computed value)
                let old = std::mem::replace(
                    &mut stripe.slots[i],
                    Slot { key, value, bytes, referenced: true },
                );
                self.bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
                self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            } else if stripe.slots.len() < self.per_stripe {
                let i = stripe.slots.len();
                stripe.slots.push(Slot { key: key.clone(), value, bytes, referenced: true });
                stripe.index.insert(key, i);
                self.entries.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            } else {
                // CLOCK sweep: clear ref bits until an unreferenced
                // victim turns up (bounded: after one full lap every
                // bit is clear)
                loop {
                    let h = stripe.hand;
                    stripe.hand = (h + 1) % stripe.slots.len();
                    if stripe.slots[h].referenced {
                        stripe.slots[h].referenced = false;
                    } else {
                        let old = std::mem::replace(
                            &mut stripe.slots[h],
                            Slot { key: key.clone(), value, bytes, referenced: true },
                        );
                        stripe.index.remove(&old.key);
                        stripe.index.insert(key, h);
                        self.bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
                        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                        evicted = true;
                        break;
                    }
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        onion_obs::count!("onion_query_cache_insertions_total");
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            onion_obs::count!("onion_query_cache_evictions_total");
        }
        onion_obs::gauge_set!("onion_query_cache_entries", self.entries.load(Ordering::Relaxed));
        onion_obs::gauge_set!("onion_query_cache_bytes", self.bytes.load(Ordering::Relaxed));
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters, coherent enough for monitoring (each field is
    /// an independent relaxed load).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed) as usize,
            bytes: self.bytes.load(Ordering::Relaxed) as usize,
            capacity: self.capacity,
        }
    }

    /// Drops every entry (counters other than `entries`/`bytes` keep
    /// accumulating).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut s = stripe.lock().expect("cache stripe poisoned");
            let freed: usize = s.slots.iter().map(|slot| slot.bytes).sum();
            self.entries.fetch_sub(s.slots.len() as u64, Ordering::Relaxed);
            self.bytes.fetch_sub(freed as u64, Ordering::Relaxed);
            s.slots.clear();
            s.index.clear();
            s.hand = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, q: &str) -> CacheKey {
        CacheKey::new("test", epoch, q)
    }

    #[test]
    fn get_after_insert_hits_and_epoch_bump_misses() {
        let cache: ResultCache<u64> = ResultCache::new(8);
        cache.insert(key(1, "q"), Arc::new(42), 8);
        assert_eq!(cache.get(&key(1, "q")).as_deref(), Some(&42));
        assert_eq!(cache.get(&key(2, "q")), None, "new epoch never sees old entries");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!(s.hit_ratio() > 0.49 && s.hit_ratio() < 0.51);
    }

    #[test]
    fn capacity_bounds_entries_and_counts_evictions() {
        let cache: ResultCache<u64> = ResultCache::new(4);
        for i in 0..100u64 {
            cache.insert(key(1, &format!("q{i}")), Arc::new(i), 16);
        }
        let s = cache.stats();
        assert!(s.entries <= cache.capacity(), "entries {} > capacity {}", s.entries, s.capacity);
        assert_eq!(s.insertions, 100);
        assert!(s.evictions > 0, "churn past capacity must evict");
        assert_eq!(s.entries + s.evictions as usize, 100, "every insert lives or was evicted");
        assert_eq!(s.bytes, s.entries * 16);
    }

    #[test]
    fn clock_keeps_recently_hit_entries() {
        // capacity 1..16 rounds stripes to 1 only at capacity 1; use a
        // single-stripe cache so the sweep is deterministic
        let cache: ResultCache<u64> = ResultCache::new(1);
        cache.insert(key(1, "hot"), Arc::new(1), 1);
        assert!(cache.get(&key(1, "hot")).is_some());
        cache.insert(key(1, "cold"), Arc::new(2), 1);
        // the single slot was replaced (capacity 1): hot is gone
        assert!(cache.get(&key(1, "hot")).is_none());
        assert!(cache.get(&key(1, "cold")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwrite_same_key_updates_bytes_without_eviction() {
        let cache: ResultCache<u64> = ResultCache::new(8);
        cache.insert(key(1, "q"), Arc::new(1), 100);
        cache.insert(key(1, "q"), Arc::new(2), 40);
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 40);
        assert_eq!(s.evictions, 0);
        assert_eq!(cache.get(&key(1, "q")).as_deref(), Some(&2));
    }

    #[test]
    fn clear_empties_and_zeroes_gauges() {
        let cache: ResultCache<u64> = ResultCache::new(8);
        for i in 0..5u64 {
            cache.insert(key(1, &format!("q{i}")), Arc::new(i), 10);
        }
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
        assert!(cache.get(&key(1, "q0")).is_none());
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let cache: Arc<ResultCache<u64>> = Arc::new(ResultCache::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = key(1, &format!("q{}", i % 32));
                        if cache.get(&k).is_none() {
                            cache.insert(k, Arc::new(t * 1000 + i), 8);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert!(s.entries <= 32);
    }
}
