//! Parallel multi-source traversal and transitive closure over a
//! [`GraphSnapshot`].
//!
//! All routines partition their *sources* across the pool
//! (source-partitioned rather than frontier-partitioned: per-source
//! BFSs are independent, need no synchronisation, and reassemble
//! deterministically — the right trade-off for ONION's workload of many
//! medium-sized traversals; frontier-splitting single giant traversals
//! is a future refinement). Each chunk owns its scratch (visited
//! stamps), so the only shared state is the immutable snapshot.
//!
//! Every function returns exactly what its sequential counterpart in
//! `onion_graph` returns, in a deterministic order independent of the
//! executor's thread count.

use onion_graph::snapshot::GraphSnapshot;
use onion_graph::traverse::{Direction, EdgeFilter};
use onion_graph::{rel, NodeId};

use crate::Executor;

/// Per-source reachable sets (BFS order, source inclusive) — the
/// parallel counterpart of calling
/// [`onion_graph::traverse::bfs`] once per source. Results are indexed
/// like `sources`; a dead source yields an empty set.
pub fn par_reachable(
    exec: &Executor,
    snapshot: &GraphSnapshot,
    sources: &[NodeId],
    dir: Direction,
    filter: &EdgeFilter,
) -> Vec<Vec<NodeId>> {
    let rf = snapshot.resolve_filter(filter);
    let per_chunk = exec.par_chunks(sources, |chunk| {
        chunk.iter().map(|&s| snapshot.bfs(s, dir, &rf)).collect::<Vec<_>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Per-source descendant sets along `label` edges (all transitive
/// subclasses under [`rel::SUBCLASS_OF`], for example), sorted by node
/// id — the parallel counterpart of
/// [`onion_graph::closure::descendants`] per source.
pub fn par_descendants(
    exec: &Executor,
    snapshot: &GraphSnapshot,
    sources: &[NodeId],
    label: &str,
) -> Vec<Vec<NodeId>> {
    let filter = EdgeFilter::label(label);
    let rf = snapshot.resolve_filter(&filter);
    let per_chunk = exec.par_chunks(sources, |chunk| {
        chunk
            .iter()
            .map(|&s| {
                // mirror closure::follow exactly: the start is expanded
                // but not pre-stamped, so it appears in its own result
                // only when a cycle rediscovers it
                if !snapshot.is_live_node(s) {
                    return Vec::new();
                }
                let mut visited = vec![false; snapshot.node_capacity()];
                let mut reached: Vec<NodeId> = Vec::new();
                let mut frontier: Vec<NodeId> = vec![s];
                let mut scan = 0;
                while scan < frontier.len() {
                    let n = frontier[scan];
                    scan += 1;
                    snapshot.for_each_neighbor(n, Direction::Backward, &rf, |m| {
                        if !visited[m.index()] {
                            visited[m.index()] = true;
                            reached.push(m);
                            frontier.push(m);
                        }
                    });
                }
                reached.sort_unstable();
                reached
            })
            .collect::<Vec<_>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// All transitive-closure pairs reachable from `sources` under
/// `filter`, in `(sources order, discovery order)` — the parallel
/// counterpart of [`onion_graph::closure::transitive_pairs`] restricted
/// to the given sources. Passing every live node id reproduces the full
/// closure (as a set; `transitive_pairs` returns its pairs unordered).
pub fn par_closure_pairs(
    exec: &Executor,
    snapshot: &GraphSnapshot,
    sources: &[NodeId],
    filter: &EdgeFilter,
) -> Vec<(NodeId, NodeId)> {
    let rf = snapshot.resolve_filter(filter);
    let per_chunk = exec.par_chunks(sources, |chunk| snapshot.closure_pairs_from(chunk, &rf));
    per_chunk.into_iter().flatten().collect()
}

/// The default closure workload: full `SubclassOf` transitive pairs.
pub fn par_subclass_closure(exec: &Executor, snapshot: &GraphSnapshot) -> Vec<(NodeId, NodeId)> {
    let sources: Vec<NodeId> = snapshot.node_ids().collect();
    par_closure_pairs(exec, snapshot, &sources, &EdgeFilter::label(rel::SUBCLASS_OF))
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_graph::OntGraph;

    fn diamond() -> OntGraph {
        let mut g = OntGraph::new("t");
        for (a, b) in [("D", "B"), ("D", "C"), ("B", "A"), ("C", "A")] {
            g.ensure_edge_by_labels(a, rel::SUBCLASS_OF, b).unwrap();
        }
        g.ensure_edge_by_labels("B", "verb0", "C").unwrap();
        g
    }

    #[test]
    fn parallel_equals_sequential_for_each_routine() {
        let g = diamond();
        let snap = g.snapshot();
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let seq = Executor::sequential();
        let par = Executor::new(4);
        let filter = EdgeFilter::label(rel::SUBCLASS_OF);

        assert_eq!(
            par_reachable(&seq, &snap, &sources, Direction::Forward, &filter),
            par_reachable(&par, &snap, &sources, Direction::Forward, &filter),
        );
        assert_eq!(
            par_descendants(&seq, &snap, &sources, rel::SUBCLASS_OF),
            par_descendants(&par, &snap, &sources, rel::SUBCLASS_OF),
        );
        assert_eq!(
            par_closure_pairs(&seq, &snap, &sources, &filter),
            par_closure_pairs(&par, &snap, &sources, &filter),
        );
    }

    #[test]
    fn descendants_match_graph_closure() {
        let g = diamond();
        let snap = g.snapshot();
        let exec = Executor::new(3);
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let per_source = par_descendants(&exec, &snap, &sources, rel::SUBCLASS_OF);
        for (&s, got) in sources.iter().zip(&per_source) {
            let mut expected: Vec<NodeId> =
                onion_graph::closure::descendants(&g, s, rel::SUBCLASS_OF).into_iter().collect();
            expected.sort_unstable();
            assert_eq!(*got, expected, "source {s:?}");
        }
        let a = g.node_by_label("A").unwrap();
        let idx = sources.iter().position(|&s| s == a).unwrap();
        assert_eq!(per_source[idx].len(), 3, "A has descendants B, C, D");
    }

    #[test]
    fn closure_pairs_match_transitive_pairs_as_a_set() {
        let g = diamond();
        let snap = g.snapshot();
        let exec = Executor::new(2);
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let filter = EdgeFilter::All;
        let mut par: Vec<(NodeId, NodeId)> = par_closure_pairs(&exec, &snap, &sources, &filter);
        par.sort_unstable();
        let mut seq: Vec<(NodeId, NodeId)> =
            onion_graph::closure::transitive_pairs(&g, &filter).into_iter().collect();
        seq.sort_unstable();
        assert_eq!(par, seq);
    }

    #[test]
    fn descendants_include_the_source_only_on_cycles() {
        // regression: the source must appear in its own descendant set
        // exactly when a cycle rediscovers it, matching
        // closure::descendants (a plain retain(n != s) diverged here)
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", rel::SUBCLASS_OF, "B").unwrap();
        g.ensure_edge_by_labels("B", rel::SUBCLASS_OF, "A").unwrap();
        g.ensure_edge_by_labels("C", rel::SUBCLASS_OF, "A").unwrap();
        let snap = g.snapshot();
        let exec = Executor::new(2);
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let got = par_descendants(&exec, &snap, &sources, rel::SUBCLASS_OF);
        for (&s, got_set) in sources.iter().zip(&got) {
            let mut expected: Vec<NodeId> =
                onion_graph::closure::descendants(&g, s, rel::SUBCLASS_OF).into_iter().collect();
            expected.sort_unstable();
            assert_eq!(got_set, &expected, "source {s:?}");
        }
        let a = g.node_by_label("A").unwrap();
        let idx = sources.iter().position(|&s| s == a).unwrap();
        assert!(got[idx].contains(&a), "A is on a cycle, so it is its own descendant");
    }

    #[test]
    fn dead_sources_yield_empty_sets() {
        let mut g = diamond();
        let d = g.node_by_label("D").unwrap();
        g.delete_node(d).unwrap();
        let snap = g.snapshot();
        let exec = Executor::new(2);
        let out = par_reachable(&exec, &snap, &[d], Direction::Forward, &EdgeFilter::All);
        assert_eq!(out, vec![Vec::<NodeId>::new()]);
    }
}
