//! Parallel multi-source traversal and transitive closure over a
//! [`ShardedSnapshot`].
//!
//! Two fan-out shapes, both deterministic and byte-identical to the
//! sequential path:
//!
//! * **shard-parallel source batches** — `par_reachable`,
//!   `par_descendants` and `par_closure_pairs` group their sources by
//!   the snapshot shard that owns them and fan the groups (split
//!   further for load balance) across the pool. Each job's roots share
//!   one shard, so the shard's CSR slices stay cache-hot while the
//!   traversal itself is free to cross shard boundaries through the
//!   mirrored edges. Per-job scratch (visited stamps) is private;
//!   results are scattered back into input-order slots, so the output
//!   is identical to the sequential executor's at every thread *and*
//!   shard count.
//! * **frontier-splitting** — [`par_frontier_bfs`] parallelises one
//!   giant single-root traversal: each BFS level's frontier is chunked
//!   across the pool (reading the visited set of completed levels only)
//!   and the per-chunk discoveries are merged sequentially in frontier
//!   order, which reproduces the queue-based [`ShardedSnapshot::bfs`]
//!   order exactly.
//!
//! Every function returns exactly what its sequential counterpart in
//! `onion_graph` returns, in a deterministic order independent of the
//! executor's thread count and the snapshot's shard count.

use onion_graph::snapshot::ShardedSnapshot;
use onion_graph::traverse::{Direction, EdgeFilter};
use onion_graph::{rel, NodeId};

use crate::Executor;

/// Sources grouped by owning shard, each group split into chunks sized
/// for the executor, every entry keeping its input position. The
/// partition is pure bookkeeping: per-source results do not depend on
/// it, so scattering by position restores the sequential output.
fn shard_chunks(
    exec: &Executor,
    snapshot: &ShardedSnapshot,
    sources: &[NodeId],
) -> Vec<Vec<(u32, NodeId)>> {
    let mut groups: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); snapshot.shard_count()];
    for (i, &s) in sources.iter().enumerate() {
        groups[snapshot.shard_of(s)].push((i as u32, s));
    }
    let target = sources.len().div_ceil(exec.threads() * 4).max(1);
    let mut chunks = Vec::new();
    for group in groups {
        for chunk in group.chunks(target) {
            chunks.push(chunk.to_vec());
        }
    }
    chunks
}

/// Runs `kernel` over every `(input position, source)` chunk on the
/// pool and scatters the per-source results back into input order.
fn run_sharded<R: Send + Clone + Default>(
    exec: &Executor,
    snapshot: &ShardedSnapshot,
    sources: &[NodeId],
    kernel: impl Fn(&[(u32, NodeId)]) -> Vec<R> + Sync,
) -> Vec<R> {
    let chunks = shard_chunks(exec, snapshot, sources);
    let per_chunk = exec.par_map(&chunks, |chunk| kernel(chunk));
    let mut out: Vec<R> = vec![R::default(); sources.len()];
    for (chunk, results) in chunks.iter().zip(per_chunk) {
        for (&(i, _), r) in chunk.iter().zip(results) {
            out[i as usize] = r;
        }
    }
    out
}

/// Per-source reachable sets (BFS order, source inclusive) — the
/// parallel counterpart of calling
/// [`onion_graph::traverse::bfs`] once per source, fanned out
/// shard-parallel. Results are indexed like `sources`; a dead source
/// yields an empty set.
pub fn par_reachable(
    exec: &Executor,
    snapshot: &ShardedSnapshot,
    sources: &[NodeId],
    dir: Direction,
    filter: &EdgeFilter,
) -> Vec<Vec<NodeId>> {
    let rf = snapshot.resolve_filter(filter);
    run_sharded(exec, snapshot, sources, |chunk| {
        chunk.iter().map(|&(_, s)| snapshot.bfs(s, dir, &rf)).collect()
    })
}

/// Per-source descendant sets along `label` edges (all transitive
/// subclasses under [`rel::SUBCLASS_OF`], for example), sorted by node
/// id — the parallel counterpart of
/// [`onion_graph::closure::descendants`] per source.
pub fn par_descendants(
    exec: &Executor,
    snapshot: &ShardedSnapshot,
    sources: &[NodeId],
    label: &str,
) -> Vec<Vec<NodeId>> {
    let filter = EdgeFilter::label(label);
    let rf = snapshot.resolve_filter(&filter);
    run_sharded(exec, snapshot, sources, |chunk| {
        chunk
            .iter()
            .map(|&(_, s)| {
                // mirror closure::follow exactly: the start is expanded
                // but not pre-stamped, so it appears in its own result
                // only when a cycle rediscovers it
                if !snapshot.is_live_node(s) {
                    return Vec::new();
                }
                // dense scratch: visited is sized to live nodes, not
                // node_capacity, via the snapshot's per-shard remap
                let mut visited = vec![false; snapshot.scratch_len()];
                let mut reached: Vec<NodeId> = Vec::new();
                let mut frontier: Vec<NodeId> = vec![s];
                let mut scan = 0;
                while scan < frontier.len() {
                    let n = frontier[scan];
                    scan += 1;
                    snapshot.for_each_neighbor(n, Direction::Backward, &rf, |m| {
                        let d = snapshot.dense_of(m);
                        if !visited[d] {
                            visited[d] = true;
                            reached.push(m);
                            frontier.push(m);
                        }
                    });
                }
                reached.sort_unstable();
                reached
            })
            .collect()
    })
}

/// All transitive-closure pairs reachable from `sources` under
/// `filter`, in `(sources order, discovery order)` — the parallel
/// counterpart of [`onion_graph::closure::transitive_pairs`] restricted
/// to the given sources. Passing every live node id reproduces the full
/// closure (as a set; `transitive_pairs` returns its pairs unordered).
pub fn par_closure_pairs(
    exec: &Executor,
    snapshot: &ShardedSnapshot,
    sources: &[NodeId],
    filter: &EdgeFilter,
) -> Vec<(NodeId, NodeId)> {
    let rf = snapshot.resolve_filter(filter);
    let per_source = run_sharded(exec, snapshot, sources, |chunk| {
        // one stamp vector per chunk, shared across its sources
        let starts: Vec<NodeId> = chunk.iter().map(|&(_, s)| s).collect();
        snapshot.closure_runs_from(&starts, &rf)
    });
    per_source.into_iter().flatten().collect()
}

/// The default closure workload: full `SubclassOf` transitive pairs.
pub fn par_subclass_closure(exec: &Executor, snapshot: &ShardedSnapshot) -> Vec<(NodeId, NodeId)> {
    let sources: Vec<NodeId> = snapshot.node_ids().collect();
    par_closure_pairs(exec, snapshot, &sources, &EdgeFilter::label(rel::SUBCLASS_OF))
}

/// Frontier-splitting parallel BFS from one root — the complement of
/// the source-partitioned routines for single giant traversals (e.g.
/// whole-graph reachability from one node), where there is only one
/// source to partition.
///
/// Level-synchronous: each level's frontier is chunked across the pool;
/// workers read the visited set of *completed* levels only and emit
/// candidate discoveries, which are then merged sequentially in
/// frontier order. First-seen-wins in that merge reproduces the exact
/// discovery order of the sequential queue BFS, so the returned order
/// is byte-identical to [`ShardedSnapshot::bfs`] at every thread and
/// shard count. The traversal crosses shard boundaries freely via the
/// mirrored edge entries.
pub fn par_frontier_bfs(
    exec: &Executor,
    snapshot: &ShardedSnapshot,
    start: NodeId,
    dir: Direction,
    filter: &EdgeFilter,
) -> Vec<NodeId> {
    let rf = snapshot.resolve_filter(filter);
    if !snapshot.is_live_node(start) {
        return Vec::new();
    }
    // dense scratch: visited is sized to live nodes, not node_capacity
    let mut visited = vec![false; snapshot.scratch_len()];
    visited[snapshot.dense_of(start)] = true;
    let mut order = vec![start];
    let mut frontier = vec![start];
    while !frontier.is_empty() {
        let seen = &visited; // read-only during the parallel phase
        let per_chunk = exec.par_chunks(&frontier, |chunk| {
            let mut found = Vec::new();
            for &n in chunk {
                snapshot.for_each_neighbor(n, dir, &rf, |m| {
                    if !seen[snapshot.dense_of(m)] {
                        found.push(m);
                    }
                });
            }
            found
        });
        let mut next = Vec::new();
        for m in per_chunk.into_iter().flatten() {
            let d = snapshot.dense_of(m);
            if !visited[d] {
                visited[d] = true;
                order.push(m);
                next.push(m);
            }
        }
        frontier = next;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_graph::OntGraph;

    fn diamond() -> OntGraph {
        let mut g = OntGraph::new("t");
        for (a, b) in [("D", "B"), ("D", "C"), ("B", "A"), ("C", "A")] {
            g.ensure_edge_by_labels(a, rel::SUBCLASS_OF, b).unwrap();
        }
        g.ensure_edge_by_labels("B", "verb0", "C").unwrap();
        g
    }

    #[test]
    fn parallel_equals_sequential_for_each_routine() {
        let g = diamond();
        let snap = g.snapshot();
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let seq = Executor::sequential();
        let par = Executor::new(4);
        let filter = EdgeFilter::label(rel::SUBCLASS_OF);

        assert_eq!(
            par_reachable(&seq, &snap, &sources, Direction::Forward, &filter),
            par_reachable(&par, &snap, &sources, Direction::Forward, &filter),
        );
        assert_eq!(
            par_descendants(&seq, &snap, &sources, rel::SUBCLASS_OF),
            par_descendants(&par, &snap, &sources, rel::SUBCLASS_OF),
        );
        assert_eq!(
            par_closure_pairs(&seq, &snap, &sources, &filter),
            par_closure_pairs(&par, &snap, &sources, &filter),
        );
    }

    #[test]
    fn shard_count_does_not_change_any_result() {
        let mut g = diamond();
        g.set_shard_count(1);
        let mono = g.snapshot();
        let sources: Vec<NodeId> = mono.node_ids().collect();
        let exec = Executor::new(4);
        let filter = EdgeFilter::All;
        let want_reach = par_reachable(&exec, &mono, &sources, Direction::Forward, &filter);
        let want_pairs = par_closure_pairs(&exec, &mono, &sources, &filter);
        for count in [2usize, 7, 64] {
            g.set_shard_count(count);
            let snap = g.snapshot();
            assert_eq!(
                par_reachable(&exec, &snap, &sources, Direction::Forward, &filter),
                want_reach,
                "shards={count}"
            );
            assert_eq!(
                par_closure_pairs(&exec, &snap, &sources, &filter),
                want_pairs,
                "shards={count}"
            );
        }
    }

    #[test]
    fn descendants_match_graph_closure() {
        let g = diamond();
        let snap = g.snapshot();
        let exec = Executor::new(3);
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let per_source = par_descendants(&exec, &snap, &sources, rel::SUBCLASS_OF);
        for (&s, got) in sources.iter().zip(&per_source) {
            let mut expected: Vec<NodeId> =
                onion_graph::closure::descendants(&g, s, rel::SUBCLASS_OF).into_iter().collect();
            expected.sort_unstable();
            assert_eq!(*got, expected, "source {s:?}");
        }
        let a = g.node_by_label("A").unwrap();
        let idx = sources.iter().position(|&s| s == a).unwrap();
        assert_eq!(per_source[idx].len(), 3, "A has descendants B, C, D");
    }

    #[test]
    fn closure_pairs_match_transitive_pairs_as_a_set() {
        let g = diamond();
        let snap = g.snapshot();
        let exec = Executor::new(2);
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let filter = EdgeFilter::All;
        let mut par: Vec<(NodeId, NodeId)> = par_closure_pairs(&exec, &snap, &sources, &filter);
        par.sort_unstable();
        let mut seq: Vec<(NodeId, NodeId)> =
            onion_graph::closure::transitive_pairs(&g, &filter).into_iter().collect();
        seq.sort_unstable();
        assert_eq!(par, seq);
    }

    #[test]
    fn descendants_include_the_source_only_on_cycles() {
        // regression: the source must appear in its own descendant set
        // exactly when a cycle rediscovers it, matching
        // closure::descendants (a plain retain(n != s) diverged here)
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", rel::SUBCLASS_OF, "B").unwrap();
        g.ensure_edge_by_labels("B", rel::SUBCLASS_OF, "A").unwrap();
        g.ensure_edge_by_labels("C", rel::SUBCLASS_OF, "A").unwrap();
        let snap = g.snapshot();
        let exec = Executor::new(2);
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let got = par_descendants(&exec, &snap, &sources, rel::SUBCLASS_OF);
        for (&s, got_set) in sources.iter().zip(&got) {
            let mut expected: Vec<NodeId> =
                onion_graph::closure::descendants(&g, s, rel::SUBCLASS_OF).into_iter().collect();
            expected.sort_unstable();
            assert_eq!(got_set, &expected, "source {s:?}");
        }
        let a = g.node_by_label("A").unwrap();
        let idx = sources.iter().position(|&s| s == a).unwrap();
        assert!(got[idx].contains(&a), "A is on a cycle, so it is its own descendant");
    }

    #[test]
    fn dead_sources_yield_empty_sets() {
        let mut g = diamond();
        let d = g.node_by_label("D").unwrap();
        g.delete_node(d).unwrap();
        let snap = g.snapshot();
        let exec = Executor::new(2);
        let out = par_reachable(&exec, &snap, &[d], Direction::Forward, &EdgeFilter::All);
        assert_eq!(out, vec![Vec::<NodeId>::new()]);
    }

    #[test]
    fn duplicate_sources_are_answered_per_occurrence() {
        let g = diamond();
        let snap = g.snapshot();
        let exec = Executor::new(3);
        let d = g.node_by_label("D").unwrap();
        let a = g.node_by_label("A").unwrap();
        let sources = vec![d, a, d, d];
        let got = par_reachable(&exec, &snap, &sources, Direction::Forward, &EdgeFilter::All);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], got[2]);
        assert_eq!(got[0], got[3]);
        let pairs = par_closure_pairs(&exec, &snap, &sources, &EdgeFilter::All);
        let seq = par_closure_pairs(&Executor::sequential(), &snap, &sources, &EdgeFilter::All);
        assert_eq!(pairs, seq);
    }

    #[test]
    fn frontier_bfs_matches_sequential_bfs_exactly() {
        let mut g = diamond();
        for count in [1usize, 2, 7, 64] {
            g.set_shard_count(count);
            let snap = g.snapshot();
            let rf = snap.resolve_filter(&EdgeFilter::All);
            for root in snap.node_ids().collect::<Vec<_>>() {
                for dir in [Direction::Forward, Direction::Backward, Direction::Both] {
                    let want = snap.bfs(root, dir, &rf);
                    for threads in [1usize, 2, 4] {
                        let exec = Executor::new(threads);
                        let got = par_frontier_bfs(&exec, &snap, root, dir, &EdgeFilter::All);
                        assert_eq!(got, want, "shards={count} threads={threads} root={root:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn frontier_bfs_from_dead_root_is_empty() {
        let mut g = diamond();
        let d = g.node_by_label("D").unwrap();
        g.delete_node(d).unwrap();
        let snap = g.snapshot();
        let exec = Executor::new(2);
        assert!(par_frontier_bfs(&exec, &snap, d, Direction::Forward, &EdgeFilter::All).is_empty());
    }
}
