//! # onion-exec — snapshot-isolated parallel execution
//!
//! The execution subsystem behind ONION's "serve reads from every core"
//! scaling story. The division of labour:
//!
//! * `onion-graph` owns the data: the live [`OntGraph`](onion_graph::OntGraph)
//!   (single-writer) and its immutable, `Send + Sync`
//!   [`ShardedSnapshot`]s, published incrementally (dirty shards only)
//!   through a [`SnapshotStore`](onion_graph::SnapshotStore) whose
//!   `load` is mutex-free;
//! * the vendored `rayon` stand-in (`crates/compat/rayon`) owns the
//!   threads: a persistent scoped pool;
//! * this crate owns the *batching*: an [`Executor`] that fans work —
//!   generic closures, multi-source transitive closure (grouped by the
//!   snapshot shard owning each source), single-root frontier-split
//!   BFS, reformulated query batches — across the pool, over one
//!   snapshot, with results **identical to the sequential path** (same
//!   values, same order).
//!
//! Determinism is load-bearing, not cosmetic: every parallel routine
//! here partitions its input, computes per-partition results with
//! per-thread scratch, and reassembles them in input order, so
//! `Executor::new(n)` produces byte-identical output for every `n`.
//! The property tests in `tests/exec_parallel_props.rs` pin this
//! against the sequential implementations in `onion_graph::closure`
//! and `onion_graph::traverse`.
//!
//! ```
//! use onion_exec::Executor;
//! use onion_graph::{rel, OntGraph};
//! use onion_graph::traverse::{Direction, EdgeFilter};
//!
//! let mut g = OntGraph::new("t");
//! for (a, b) in [("SUV", "Car"), ("Car", "Vehicle"), ("Truck", "Vehicle")] {
//!     g.ensure_edge_by_labels(a, rel::SUBCLASS_OF, b).unwrap();
//! }
//! let snap = g.snapshot();
//! let exec = Executor::new(4);
//! let sources: Vec<_> = snap.node_ids().collect();
//! let reach =
//!     onion_exec::par_reachable(&exec, &snap, &sources, Direction::Forward, &EdgeFilter::All);
//! assert_eq!(reach.len(), sources.len());
//! ```

pub mod cache;
pub mod closure;
pub mod inference;
pub mod shardlocal;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use closure::{
    par_closure_pairs, par_descendants, par_frontier_bfs, par_reachable, par_subclass_closure,
};
pub use inference::{fact_set_checksum, par_seed_subclass_facts, ParallelEngine, ShardSeedStats};
pub use shardlocal::{par_seed_subclass_partitions, ShardLocalEngine};

use onion_graph::ShardedSnapshot;

/// A handle for running batches in parallel over immutable data.
///
/// Wraps a dedicated thread pool with an explicit thread count.
/// `Executor::new(1)` spawns no OS threads and runs everything inline
/// on the caller — the sequential baseline every parallel result is
/// compared against. The calling thread always participates, so
/// `new(n)` uses `n` CPUs during a batch.
#[derive(Debug)]
pub struct Executor {
    pool: rayon::ThreadPool,
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

impl Executor {
    /// An executor with exactly `threads` threads (min 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("stand-in pool build is infallible");
        Executor { pool, threads }
    }

    /// An executor sized to the machine (`available_parallelism`).
    pub fn with_default_parallelism() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// The strictly sequential executor (1 thread, everything inline).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The executor's thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Access to the underlying pool (for `scope`/`join` composition).
    pub fn pool(&self) -> &rayon::ThreadPool {
        &self.pool
    }

    /// Applies `f` to every item in parallel, returning results in
    /// input order. Items are grouped into contiguous chunks (several
    /// per thread, so uneven items still balance) and each chunk runs
    /// as one pool job.
    pub fn par_map<T, R>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        let _span = onion_obs::span!("exec_batch");
        onion_obs::gauge_set!("onion_exec_batch_items", items.len());
        let chunk = self.chunk_size(items.len());
        let chunks =
            self.pool.par_chunk_map(items, chunk, |c| c.iter().map(&f).collect::<Vec<R>>());
        chunks.into_iter().flatten().collect()
    }

    /// Applies `f` to consecutive chunks of `items` (the partition unit
    /// for routines that carry per-chunk scratch), returning per-chunk
    /// results in chunk order. Chunk size is chosen by the executor.
    pub fn par_chunks<T, R>(&self, items: &[T], f: impl Fn(&[T]) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.pool.par_chunk_map(items, self.chunk_size(items.len()), f)
    }

    /// A few chunks per thread: balances uneven per-item cost without
    /// drowning the queue in tiny jobs.
    fn chunk_size(&self, len: usize) -> usize {
        len.div_ceil(self.threads * 4).max(1)
    }
}

/// Order-sensitive FNV-1a accumulator, the one hash used everywhere a
/// batch result is checksummed (here and in `onion-bench`'s B10): two
/// result sequences checksum equal only if they agree element for
/// element, in order.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes one word.
    pub fn mix(&mut self, x: u64) {
        self.0 ^= x;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    /// Mixes a byte string, order-sensitively.
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Checksum of per-source traversal results (FNV-1a over node ids in
/// order) — used by the benches to assert byte-identical outputs across
/// thread counts.
pub fn result_checksum(snapshot: &ShardedSnapshot, results: &[Vec<onion_graph::NodeId>]) -> u64 {
    let mut h = Fnv::new();
    h.mix(snapshot.node_count() as u64);
    for set in results {
        h.mix(set.len() as u64);
        for n in set {
            h.mix(n.index() as u64);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u32> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 4, 8] {
            let exec = Executor::new(threads);
            assert_eq!(exec.par_map(&items, |x| x * 3), expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let items: Vec<u32> = (0..50).collect();
        let exec = Executor::new(3);
        let per_chunk = exec.par_chunks(&items, |c| c.to_vec());
        let flat: Vec<u32> = per_chunk.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn sequential_executor_has_one_thread() {
        assert_eq!(Executor::sequential().threads(), 1);
        assert!(Executor::with_default_parallelism().threads() >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let exec = Executor::new(4);
        let out: Vec<u32> = exec.par_map(&[] as &[u32], |x| *x);
        assert!(out.is_empty());
    }
}
