//! Candidate articulation rules, as proposed by SKAT matchers.

use onion_rules::ArticulationRule;

/// A rule proposal with confidence and provenance, awaiting expert
/// review (§2.4: "Articulation rules are proposed by SKAT … and verified
/// by the expert").
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateRule {
    /// The proposed rule.
    pub rule: ArticulationRule,
    /// Matcher confidence in `[0, 1]`.
    pub confidence: f64,
    /// Which matcher produced it (e.g. `"exact-label"`, `"synonym"`).
    pub provenance: String,
    /// Short human-readable justification shown to the expert.
    pub evidence: String,
}

impl CandidateRule {
    /// Creates a candidate.
    pub fn new(
        rule: ArticulationRule,
        confidence: f64,
        provenance: &str,
        evidence: impl Into<String>,
    ) -> Self {
        CandidateRule {
            rule,
            confidence: confidence.clamp(0.0, 1.0),
            provenance: provenance.to_string(),
            evidence: evidence.into(),
        }
    }

    /// Deduplicates candidates by rule, keeping the highest-confidence
    /// proposal and concatenating provenance. Result is sorted by
    /// descending confidence, ties by rule text for determinism.
    pub fn merge(candidates: Vec<CandidateRule>) -> Vec<CandidateRule> {
        let mut merged: Vec<CandidateRule> = Vec::new();
        for c in candidates {
            match merged.iter_mut().find(|m| m.rule == c.rule) {
                Some(m) => {
                    if !m.provenance.split('+').any(|p| p == c.provenance) {
                        m.provenance = format!("{}+{}", m.provenance, c.provenance);
                    }
                    if c.confidence > m.confidence {
                        m.confidence = c.confidence;
                        m.evidence = c.evidence;
                    }
                }
                None => merged.push(c),
            }
        }
        merged.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("confidences are finite")
                .then_with(|| a.rule.to_string().cmp(&b.rule.to_string()))
        });
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_rules::Term;

    fn rule(a: &str, b: &str) -> ArticulationRule {
        ArticulationRule::term_implies(Term::qualified("o1", a), Term::qualified("o2", b))
    }

    #[test]
    fn confidence_clamped() {
        let c = CandidateRule::new(rule("A", "B"), 1.5, "x", "");
        assert_eq!(c.confidence, 1.0);
        let c = CandidateRule::new(rule("A", "B"), -0.5, "x", "");
        assert_eq!(c.confidence, 0.0);
    }

    #[test]
    fn merge_keeps_max_confidence_and_joins_provenance() {
        let merged = CandidateRule::merge(vec![
            CandidateRule::new(rule("A", "B"), 0.5, "similarity", "sim=0.5"),
            CandidateRule::new(rule("A", "B"), 0.9, "synonym", "lexicon"),
            CandidateRule::new(rule("C", "D"), 0.7, "exact-label", ""),
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].confidence, 0.9);
        assert_eq!(merged[0].provenance, "similarity+synonym");
        assert_eq!(merged[0].evidence, "lexicon");
        assert_eq!(merged[1].confidence, 0.7);
    }

    #[test]
    fn merge_sorts_by_confidence_then_text() {
        let merged = CandidateRule::merge(vec![
            CandidateRule::new(rule("Z", "Z"), 0.8, "a", ""),
            CandidateRule::new(rule("A", "A"), 0.8, "a", ""),
            CandidateRule::new(rule("M", "M"), 0.9, "a", ""),
        ]);
        assert_eq!(merged[0].rule, rule("M", "M"));
        assert_eq!(merged[1].rule, rule("A", "A"));
        assert_eq!(merged[2].rule, rule("Z", "Z"));
    }

    #[test]
    fn merge_does_not_duplicate_provenance() {
        let merged = CandidateRule::merge(vec![
            CandidateRule::new(rule("A", "B"), 0.5, "synonym", ""),
            CandidateRule::new(rule("A", "B"), 0.6, "synonym", ""),
        ]);
        assert_eq!(merged[0].provenance, "synonym");
    }
}
