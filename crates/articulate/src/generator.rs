//! The articulation generator: confirmed rules → articulation ontology
//! graph + semantic bridges, per the translation walked through in §4.1
//! of the paper.
//!
//! The translation, rule shape by rule shape (each is tested against the
//! paper's own example below):
//!
//! * **simple** `o1.A ⇒ o2.B`: ensure articulation node `B`; add the edge
//!   set of the paper's example —
//!   `EA[{(o1.A, SIBridge, art.B), (o2.B, SIBridge, art.B),
//!   (art.B, SIBridge, o2.B)}]` — the last two making `o2.B` and `art.B`
//!   equivalent;
//! * **cascaded** `o1.A ⇒ art.X ⇒ o2.B`: add node `X` to the articulation
//!   and the bridges `(o1.A, SIBridge, art.X)`, `(art.X, SIBridge, o2.B)`;
//! * **intra-articulation** `art.X ⇒ art.Y`: a `SubclassOf` edge inside
//!   the articulation graph ("indicating that the class Owner is a
//!   subclass of the class Person");
//! * **conjunction** `(p ∧ q) ⇒ r`: a synthesised node labeled by the
//!   predicate text (`CargoCarrierVehicle`), bridged as a specialisation
//!   of each conjunct and of `r`; additionally every source class that is
//!   a (transitive) subclass of *all* conjuncts is bridged under the new
//!   node ("all subclasses of Vehicle that are also subclasses of
//!   CargoCarrier, e.g, Truck, are made subclasses of
//!   CargoCarrierVehicle");
//! * **disjunction** `p ⇒ (q ∨ r)`: a synthesised union node
//!   (`CarsTrucks`) that each disjunct and `p` specialise;
//! * **functional** `F(): a ⇒ b`: a bridge labeled `F` from `a` to the
//!   articulation term `b`, with the reverse bridge labeled by `F`'s
//!   registered inverse when known.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use onion_graph::hash::FxHashSet;
use onion_graph::{rel, LabelId};
use onion_ontology::Ontology;
use onion_rules::horn::{lower_rules_interned, HornProgram};
use onion_rules::infer::{FactBase, InferenceEngine, InferenceStats};
use onion_rules::properties::RelationRegistry;
use onion_rules::{ArticulationRule, AtomTable, ConversionRegistry, RuleExpr, RuleSet, Term};

use crate::articulation::{Articulation, Bridge, BridgeKind};
use crate::{ArticulateError, Result};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Name of the articulation ontology (Fig. 2 uses `transport`).
    pub art_name: String,
    /// Conversion functions for functional rules (used to wire inverse
    /// bridges).
    pub conversions: ConversionRegistry,
    /// Run the inference engine to derive additional source→articulation
    /// bridges (transitive semantic implication; §2.4 "The inference
    /// engine … derive\[s\] more rules if possible").
    pub expand_with_inference: bool,
    /// Inherit `SubclassOf` structure into the articulation ontology from
    /// the source portions its terms are anchored to (§4.2).
    pub inherit_structure: bool,
    /// Error on rules referencing terms absent from their source
    /// ontology (on: the SKAT pipeline only proposes existing terms).
    pub strict_terms: bool,
    /// Shared atom table for inference expansion. When set (the
    /// `OnionSystem` path), interned symbols and per-graph label memos
    /// persist across articulation/maintenance cycles, so re-seeding a
    /// `FactBase` from an already-seen graph is pure array lookups;
    /// when `None` the generator interns into a run-local table.
    pub atoms: Option<Arc<Mutex<AtomTable>>>,
    /// Executor for shard-parallel inference expansion. When set,
    /// graph-edge fact seeding partitions by snapshot shard and
    /// saturation runs semi-naive on the pool
    /// (`onion_exec::inference`); derived fact sets, bridge output,
    /// and the round counters equal the sequential path's at every
    /// shard and thread count. When `None` (default) expansion is
    /// fully sequential.
    pub executor: Option<Arc<onion_exec::Executor>>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            art_name: "transport".into(),
            conversions: ConversionRegistry::standard(),
            expand_with_inference: false,
            inherit_structure: true,
            strict_terms: true,
            atoms: None,
            executor: None,
        }
    }
}

/// Observability counters for one generation run (populated by the
/// inference-expansion pass; zero when `expand_with_inference` is off).
///
/// On the parallel path the counters are merged deterministically:
/// `skipped_dead_nodes` sums per-shard counts in ascending shard order
/// per ontology, ontologies in `sources` order then the articulation
/// ontology; `inference.rounds` comes from the single merged
/// saturation loop (see `onion_exec::inference` for the merge-order
/// contract). Equal configurations therefore reproduce equal stats —
/// `expansion_reports_stats_and_reuses_shared_table` and the
/// `seminaive_props` suite assert this by direct comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GeneratorStats {
    /// Ground facts seeded into the `FactBase` (bridges, subclass
    /// edges, lowered rules).
    pub seeded_facts: usize,
    /// Edge endpoints skipped because their node was deleted between
    /// edge enumeration and label resolution (concurrent churn on a
    /// source graph); the edge contributes no fact instead of
    /// panicking.
    pub skipped_dead_nodes: usize,
    /// Counters of the saturation run.
    pub inference: InferenceStats,
    /// Derived source→articulation bridges added to the articulation.
    pub derived_bridges: usize,
}

/// The articulation generator (§2.4 "ArtiGen" in Fig. 1).
#[derive(Debug, Clone, Default)]
pub struct ArticulationGenerator {
    config: GeneratorConfig,
}

/// Internal: where an expression anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Anchor {
    /// A term in a source ontology.
    Source(Term),
    /// A node (by label) in the articulation ontology.
    Art(String),
}

impl ArticulationGenerator {
    /// Generator with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generator with custom configuration.
    pub fn with_config(config: GeneratorConfig) -> Self {
        ArticulationGenerator { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the articulation of `sources` under `rules`.
    pub fn generate(&self, rules: &RuleSet, sources: &[&Ontology]) -> Result<Articulation> {
        self.generate_with_stats(rules, sources).map(|(art, _)| art)
    }

    /// [`ArticulationGenerator::generate`] plus the run's
    /// [`GeneratorStats`].
    pub fn generate_with_stats(
        &self,
        rules: &RuleSet,
        sources: &[&Ontology],
    ) -> Result<(Articulation, GeneratorStats)> {
        let mut art = Articulation::new(&self.config.art_name);
        for rule in rules.iter() {
            self.apply_rule(rule, sources, &mut art)?;
            art.rules.push(rule.clone());
        }
        if self.config.inherit_structure {
            self.inherit_structure(&mut art, sources)?;
        }
        let stats = if self.config.expand_with_inference {
            self.expand(&mut art, sources)?
        } else {
            GeneratorStats::default()
        };
        Ok((art, stats))
    }

    /// Applies one additional confirmed rule to an existing articulation
    /// (used by the iterative engine and incremental maintenance). Every
    /// bridge the rule generates is recorded as supported by it, so
    /// maintenance can retract exactly these bridges if the rule is
    /// later dropped.
    pub fn apply_rule(
        &self,
        rule: &ArticulationRule,
        sources: &[&Ontology],
        art: &mut Articulation,
    ) -> Result<()> {
        let rule_key = rule.to_string();
        match rule {
            ArticulationRule::Implication { chain } => {
                let mut anchors = Vec::with_capacity(chain.len());
                for expr in chain {
                    anchors.push(self.resolve_expr(expr, sources, art, &rule_key)?);
                }
                for pair in anchors.windows(2) {
                    self.link_pair(&pair[0], &pair[1], art, &rule_key)?;
                }
                Ok(())
            }
            ArticulationRule::Functional { function, from, to } => {
                self.apply_functional(function, from, to, sources, art, &rule_key)
            }
        }
    }

    fn art_term(&self, art: &Articulation, label: &str) -> Term {
        Term::qualified(art.name(), label)
    }

    fn find_source<'a>(&self, sources: &[&'a Ontology], name: &str) -> Option<&'a Ontology> {
        sources.iter().copied().find(|o| o.name() == name)
    }

    /// Resolves a term to an anchor, creating articulation nodes on
    /// demand. Unqualified terms live in the articulation namespace.
    fn resolve_term(
        &self,
        term: &Term,
        sources: &[&Ontology],
        art: &mut Articulation,
    ) -> Result<Anchor> {
        match term.ontology.as_deref() {
            None => {
                art.ontology.graph_mut().ensure_node(&term.name)?;
                Ok(Anchor::Art(term.name.clone()))
            }
            Some(o) if o == art.name() => {
                art.ontology.graph_mut().ensure_node(&term.name)?;
                Ok(Anchor::Art(term.name.clone()))
            }
            Some(o) => match self.find_source(sources, o) {
                None => Err(ArticulateError::UnknownOntology(o.to_string())),
                Some(src) => {
                    if self.config.strict_terms && !src.defines(&term.name) {
                        return Err(ArticulateError::UnknownTerm(term.to_string()));
                    }
                    Ok(Anchor::Source(term.clone()))
                }
            },
        }
    }

    /// Resolves an expression, synthesising intersection/union classes
    /// for And/Or per §4.1.
    fn resolve_expr(
        &self,
        expr: &RuleExpr,
        sources: &[&Ontology],
        art: &mut Articulation,
        rule_key: &str,
    ) -> Result<Anchor> {
        match expr {
            RuleExpr::Term(t) => self.resolve_term(t, sources, art),
            RuleExpr::And(members) => {
                let label = expr.default_label();
                art.ontology.graph_mut().ensure_node(&label)?;
                let mut member_anchors = Vec::with_capacity(members.len());
                for m in members {
                    member_anchors.push(self.resolve_expr(m, sources, art, rule_key)?);
                }
                // the intersection class specialises each conjunct
                for a in &member_anchors {
                    match a {
                        Anchor::Source(t) => {
                            art.add_bridge_supported(
                                Bridge::si(self.art_term(art, &label), t.clone(), BridgeKind::Rule),
                                rule_key,
                            );
                        }
                        Anchor::Art(m) => {
                            let m = m.clone();
                            art.ontology.graph_mut().ensure_edge_by_labels(
                                &label,
                                rel::SUBCLASS_OF,
                                &m,
                            )?;
                        }
                    }
                }
                // common subclasses of all conjuncts slot under the new
                // class (the paper's Truck example)
                self.bridge_common_subclasses(&label, &member_anchors, sources, art, rule_key)?;
                Ok(Anchor::Art(label))
            }
            RuleExpr::Or(members) => {
                let label = expr.default_label();
                art.ontology.graph_mut().ensure_node(&label)?;
                for m in members {
                    let a = self.resolve_expr(m, sources, art, rule_key)?;
                    match a {
                        Anchor::Source(t) => {
                            art.add_bridge_supported(
                                Bridge::si(t, self.art_term(art, &label), BridgeKind::Rule),
                                rule_key,
                            );
                        }
                        Anchor::Art(m) => {
                            art.ontology.graph_mut().ensure_edge_by_labels(
                                &m,
                                rel::SUBCLASS_OF,
                                &label,
                            )?;
                        }
                    }
                }
                Ok(Anchor::Art(label))
            }
        }
    }

    /// For conjuncts anchored in one source ontology, bridge every class
    /// that is a transitive subclass of all of them under `label`.
    fn bridge_common_subclasses(
        &self,
        label: &str,
        members: &[Anchor],
        sources: &[&Ontology],
        art: &mut Articulation,
        rule_key: &str,
    ) -> Result<()> {
        let mut terms: Vec<&Term> = Vec::new();
        for m in members {
            match m {
                Anchor::Source(t) => terms.push(t),
                Anchor::Art(_) => return Ok(()), // mixed anchors: skip closure step
            }
        }
        let Some(first_onto) = terms.first().and_then(|t| t.ontology.as_deref()) else {
            return Ok(());
        };
        if !terms.iter().all(|t| t.in_ontology(first_onto)) {
            return Ok(()); // conjuncts span ontologies: no common subclass set
        }
        let Some(src) = self.find_source(sources, first_onto) else {
            return Ok(());
        };
        let mut common: Option<HashSet<String>> = None;
        for t in &terms {
            let subs: HashSet<String> = src.subclasses(&t.name).into_iter().collect();
            common = Some(match common {
                None => subs,
                Some(prev) => prev.intersection(&subs).cloned().collect(),
            });
        }
        let mut common: Vec<String> = common.unwrap_or_default().into_iter().collect();
        common.sort();
        for sub in common {
            art.add_bridge_supported(
                Bridge::si(
                    Term::qualified(first_onto, &sub),
                    self.art_term(art, label),
                    BridgeKind::Rule,
                ),
                rule_key,
            );
        }
        Ok(())
    }

    /// Links one implication pair per the §4.1 case analysis.
    fn link_pair(
        &self,
        l: &Anchor,
        r: &Anchor,
        art: &mut Articulation,
        rule_key: &str,
    ) -> Result<()> {
        match (l, r) {
            (Anchor::Source(a), Anchor::Source(b)) => {
                // the paper's simple-bridge translation: art node named
                // after the RHS, equivalent to the RHS source term
                let label = b.name.clone();
                art.ontology.graph_mut().ensure_node(&label)?;
                let art_t = self.art_term(art, &label);
                art.add_bridge_supported(
                    Bridge::si(a.clone(), art_t.clone(), BridgeKind::Rule),
                    rule_key,
                );
                art.add_bridge_supported(
                    Bridge::si(b.clone(), art_t.clone(), BridgeKind::Rule),
                    rule_key,
                );
                art.add_bridge_supported(
                    Bridge::si(art_t, b.clone(), BridgeKind::Equivalence),
                    rule_key,
                );
            }
            (Anchor::Source(a), Anchor::Art(x)) => {
                art.add_bridge_supported(
                    Bridge::si(a.clone(), self.art_term(art, x), BridgeKind::Rule),
                    rule_key,
                );
            }
            (Anchor::Art(x), Anchor::Source(b)) => {
                art.add_bridge_supported(
                    Bridge::si(self.art_term(art, x), b.clone(), BridgeKind::Rule),
                    rule_key,
                );
            }
            (Anchor::Art(x), Anchor::Art(y)) => {
                // intra-articulation structure: Owner => Person becomes a
                // SubclassOf edge in the articulation graph
                let (x, y) = (x.clone(), y.clone());
                art.ontology.graph_mut().ensure_edge_by_labels(&x, rel::SUBCLASS_OF, &y)?;
            }
        }
        Ok(())
    }

    fn apply_functional(
        &self,
        function: &str,
        from: &Term,
        to: &Term,
        sources: &[&Ontology],
        art: &mut Articulation,
        rule_key: &str,
    ) -> Result<()> {
        let from_anchor = self.resolve_term(from, sources, art)?;
        let to_anchor = self.resolve_term(to, sources, art)?;
        // normalise: functional bridges always target an articulation term
        let (to_art_label, to_source) = match to_anchor {
            Anchor::Art(l) => (l, None),
            Anchor::Source(t) => {
                art.ontology.graph_mut().ensure_node(&t.name)?;
                (t.name.clone(), Some(t))
            }
        };
        let art_t = self.art_term(art, &to_art_label);
        let from_term = match from_anchor {
            Anchor::Source(t) => t,
            Anchor::Art(l) => self.art_term(art, &l),
        };
        art.add_bridge_supported(
            Bridge::functional(from_term.clone(), function, art_t.clone()),
            rule_key,
        );
        if let Some(inv) = self.config.conversions.get(function).and_then(|c| c.inverse_name()) {
            art.add_bridge_supported(Bridge::functional(art_t.clone(), inv, from_term), rule_key);
        }
        if let Some(src_t) = to_source {
            // keep the source metric term equivalent to the articulation one
            art.add_bridge_supported(
                Bridge::si(src_t.clone(), art_t.clone(), BridgeKind::Rule),
                rule_key,
            );
            art.add_bridge_supported(Bridge::si(art_t, src_t, BridgeKind::Equivalence), rule_key);
        }
        Ok(())
    }

    /// §4.2 structure inheritance: articulation nodes anchored (by any
    /// bridge) to source terms inherit the `SubclassOf` relationships of
    /// those terms.
    ///
    /// Anchored terms are keyed `(source index, label id)` — the same
    /// `(onto-idx, label-id)` scheme as `onion_query::reformulate` — so
    /// the quadratic anchor×anchor membership loop hashes two `u32`s
    /// per probe instead of building and hashing `"onto.Term"` strings
    /// (ROADMAP "Remaining string seams"). A bridge term absent from
    /// its source graph cannot appear in that graph's subclass closure,
    /// so it anchors nothing, exactly as the string path behaved.
    fn inherit_structure(&self, art: &mut Articulation, sources: &[&Ontology]) -> Result<()> {
        // art label -> anchored (source index, term label-id) pairs
        let mut anchors: Vec<(String, u16, LabelId)> = Vec::new();
        let art_name = art.name().to_string();
        for b in &art.bridges {
            if b.label != rel::SI_BRIDGE {
                continue;
            }
            let (art_end, src_end) = if b.src.in_ontology(&art_name) {
                (&b.src, &b.dst)
            } else if b.dst.in_ontology(&art_name) {
                (&b.dst, &b.src)
            } else {
                continue;
            };
            let Some(o) = src_end.ontology.as_deref().filter(|o| *o != art_name) else {
                continue;
            };
            let Some(idx) = sources.iter().position(|s| s.name() == o) else { continue };
            // a term with no node in its source graph has no label id and
            // no subclass relationships to inherit
            if let Some(lid) = sources[idx].graph().label_id(&src_end.name) {
                anchors.push((art_end.name.clone(), idx as u16, lid));
            }
        }
        // Precompute each referenced source's subclass closure once (as
        // label-id pairs); anchors are then checked by set membership
        // instead of per-pair BFS (this loop is quadratic in anchors and
        // dominated the B5 union numbers before).
        let mut closures: Vec<Option<FxHashSet<(u32, u32)>>> = vec![None; sources.len()];
        for &(_, idx, _) in &anchors {
            let slot = &mut closures[idx as usize];
            if slot.is_some() {
                continue;
            }
            let g = sources[idx as usize].graph();
            let pairs = onion_graph::closure::transitive_pairs(
                g,
                &onion_graph::traverse::EdgeFilter::label(rel::SUBCLASS_OF),
            );
            let set: FxHashSet<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| {
                    (
                        g.node_label_id(a).expect("live").index() as u32,
                        g.node_label_id(b).expect("live").index() as u32,
                    )
                })
                .collect();
            *slot = Some(set);
        }
        let mut new_edges: Vec<(String, String)> = Vec::new();
        for (xl, xo, xt) in &anchors {
            let Some(closure) = closures[*xo as usize].as_ref() else { continue };
            for (yl, yo, yt) in &anchors {
                if xl == yl || xo != yo || xt == yt {
                    continue;
                }
                if closure.contains(&(xt.index() as u32, yt.index() as u32)) {
                    new_edges.push((xl.clone(), yl.clone()));
                }
            }
        }
        new_edges.sort();
        new_edges.dedup();
        for (x, y) in new_edges {
            // never create a subclass cycle in the articulation graph
            if !art.ontology.is_subclass(&y, &x) && x != y {
                art.ontology.graph_mut().ensure_edge_by_labels(&x, rel::SUBCLASS_OF, &y)?;
            }
        }
        Ok(())
    }

    /// Inference expansion: derive transitive semantic implications and
    /// add the source→articulation ones as [`BridgeKind::Derived`]
    /// bridges.
    ///
    /// The whole pass runs on interned atoms. Seeding a subclass fact
    /// from a graph edge resolves both endpoints through the shared
    /// table's per-graph label memo — after the first encounter of a
    /// label this is a dense array lookup, and at no point is an
    /// `"onto.Term"` string formatted or hashed. Filtering derived
    /// implications compares namespace *indexes* instead of the old
    /// per-candidate `format!("{s}.")` + prefix matching. Edges whose
    /// endpoint node was deleted mid-churn are skipped and counted
    /// rather than panicking.
    fn expand(&self, art: &mut Articulation, sources: &[&Ontology]) -> Result<GeneratorStats> {
        let shared = self.config.atoms.clone();
        let mut guard;
        let mut local;
        let atoms: &mut AtomTable = match &shared {
            Some(m) => {
                guard = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                &mut guard
            }
            None => {
                local = AtomTable::new();
                &mut local
            }
        };
        let mut stats = GeneratorStats::default();
        let mut fb = FactBase::new();
        let si = atoms.intern("si");
        let subclassof = atoms.intern("subclassof");
        // seed: existing SI bridges (terms interned from their parts)
        for b in &art.bridges {
            if b.label == rel::SI_BRIDGE {
                let s = atoms.intern_term(&b.src);
                let d = atoms.intern_term(&b.dst);
                if fb.add_fact(si, vec![s, d]) {
                    stats.seeded_facts += 1;
                }
            }
        }
        // seed: source subclass edges and articulation-internal subclass
        // edges — edge-label compared by id, endpoints resolved through
        // the per-graph label→atom memo. With an executor configured
        // the scan partitions by snapshot shard and each worker interns
        // into its OWN partition table (ontologies still in
        // sources-then-articulation order, so the dead-node counter
        // merges deterministically either way); the shared table sees
        // those symbols only at the fixpoint fold.
        let mut sfb = match &self.config.executor {
            Some(exec) => {
                // Partition count follows the GRAPHS (widest snapshot
                // shard count in play), never the thread count — the
                // per-worker stats vectors land in `GeneratorStats`,
                // which stays byte-identical across thread counts.
                let shards = sources
                    .iter()
                    .copied()
                    .chain([&art.ontology])
                    .map(|o| o.graph().shard_count())
                    .max()
                    .unwrap_or(1);
                let mut sfb = onion_rules::ShardedFactBase::new(shards);
                for o in sources.iter().copied().chain([&art.ontology]) {
                    let s = onion_exec::par_seed_subclass_partitions(exec, o.graph(), &mut sfb);
                    stats.seeded_facts += s.seeded;
                    stats.skipped_dead_nodes += s.skipped_dead_nodes;
                }
                Some(sfb)
            }
            None => {
                for o in sources.iter().copied().chain([&art.ontology]) {
                    let g = o.graph();
                    let Some(sub) = g.label_id(rel::SUBCLASS_OF) else { continue };
                    let mut cursor = atoms.graph_atoms(g);
                    for (_, src, lid, dst) in g.edge_entries() {
                        if lid != sub {
                            continue;
                        }
                        let (Some(s), Some(d)) = (cursor.node_atom(src), cursor.node_atom(dst))
                        else {
                            stats.skipped_dead_nodes += 1;
                            continue;
                        };
                        if fb.add_fact(subclassof, vec![s, d]) {
                            stats.seeded_facts += 1;
                        }
                    }
                }
                None
            }
        };
        // the dead-node skips are final after seeding — surface them
        onion_obs::count!("onion_generator_skipped_dead_nodes_total", stats.skipped_dead_nodes);
        // seed: rule lowering (synthesised classes appear as synth.*)
        for (a, b) in lower_rules_interned(atoms, &art.rules.rules) {
            if fb.add_fact(si, vec![a, b]) {
                stats.seeded_facts += 1;
            }
        }
        let program = HornProgram::standard(&RelationRegistry::onion_default());
        stats.inference = match (&self.config.executor, &mut sfb) {
            // shard-local saturation: workers keep their partition
            // tables, bridges/rule facts are absorbed by owner, and the
            // canonical table is touched once, at fixpoint
            (Some(exec), Some(sfb)) => onion_exec::ShardLocalEngine::new(program)
                .with_shards(sfb.shards())
                .run_partitioned(exec, sfb, atoms, &mut fb)?,
            _ => InferenceEngine::new(program).run(atoms, &mut fb)?,
        };

        // keep source-term → articulation-term implications. An
        // ontology name keys under the atom table's canonical split
        // ("acme.v2" → namespace "acme" + name prefix "v2."), so each
        // name becomes (namespace index, optional name prefix) — the
        // prefix-matching semantics of the string engine, but for the
        // common dot-free case a pure index compare
        let ns_key = |atoms: &AtomTable, name: &str| -> Option<(u32, Option<String>)> {
            match name.split_once('.') {
                Some((head, tail)) => {
                    atoms.namespace_lookup(head).map(|ns| (ns, Some(format!("{tail}."))))
                }
                None => atoms.namespace_lookup(name).map(|ns| (ns, None)),
            }
        };
        let matches = |atoms: &AtomTable, id: onion_rules::AtomId, key: &(u32, Option<String>)| {
            atoms.namespace_of(id) == Some(key.0)
                && key.1.as_deref().is_none_or(|p| atoms.name_of(id).starts_with(p))
        };
        let Some(art_key) = ns_key(atoms, art.name()) else {
            return Ok(stats); // articulation namespace seeded nothing
        };
        let source_keys: Vec<(u32, Option<String>)> =
            sources.iter().filter_map(|o| ns_key(atoms, o.name())).collect();
        let mut derived: Vec<(onion_rules::AtomId, onion_rules::AtomId)> = fb
            .query2_ids(si, None, None)
            .into_iter()
            .filter(|(a, b)| {
                matches(atoms, *b, &art_key) && source_keys.iter().any(|k| matches(atoms, *a, k))
            })
            .collect();
        // sort on resolved text so bridge order matches the string-keyed
        // engine's historical output exactly
        derived.sort_by(|x, y| {
            (atoms.resolve(x.0), atoms.resolve(x.1)).cmp(&(atoms.resolve(y.0), atoms.resolve(y.1)))
        });
        for (a, b) in derived {
            let (ao, an) = atoms.parts(a);
            let bn = atoms.name_of(b);
            if art.ontology.defines(bn)
                && art.add_bridge(Bridge::si(
                    Term::qualified(ao.expect("source-namespaced"), an),
                    Term::qualified(art.name(), bn),
                    BridgeKind::Derived,
                ))
            {
                stats.derived_bridges += 1;
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_ontology::examples::{carrier, factory};
    use onion_ontology::OntologyBuilder;
    use onion_rules::parse_rules;

    fn gen() -> ArticulationGenerator {
        ArticulationGenerator::new()
    }

    fn simple_sources() -> (Ontology, Ontology) {
        let carrier =
            OntologyBuilder::new("carrier").class_under("Car", "Transportation").build().unwrap();
        let factory = OntologyBuilder::new("factory")
            .class_under("Vehicle", "Transportation")
            .build()
            .unwrap();
        (carrier, factory)
    }

    #[test]
    fn simple_rule_matches_paper_edge_set() {
        // §4.1: (carrier.Car => factory.Vehicle) is translated to
        // EA[{(carrier.Car, SIBridge, transport.Vehicle),
        //     (factory.Vehicle, SIBridge, transport.Vehicle),
        //     (transport.Vehicle, SIBridge, factory.Vehicle)}]
        let (c, f) = simple_sources();
        let rules = parse_rules("carrier.Car => factory.Vehicle\n").unwrap();
        let art = gen().generate(&rules, &[&c, &f]).unwrap();
        assert!(art.ontology.defines("Vehicle"));
        let have: HashSet<String> = art.bridges.iter().map(|b| b.to_string()).collect();
        for expected in [
            "carrier.Car -[SIBridge]-> transport.Vehicle",
            "factory.Vehicle -[SIBridge]-> transport.Vehicle",
            "transport.Vehicle -[SIBridge]-> factory.Vehicle",
        ] {
            assert!(have.contains(expected), "missing {expected}; have {have:?}");
        }
        assert_eq!(art.bridges.len(), 3);
    }

    #[test]
    fn cascaded_rule_matches_paper() {
        // §4.1: carrier.Car => transport.PassengerCar => factory.Vehicle
        let (c, f) = simple_sources();
        let rules =
            parse_rules("carrier.Car => transport.PassengerCar => factory.Vehicle\n").unwrap();
        let art = gen().generate(&rules, &[&c, &f]).unwrap();
        assert!(art.ontology.defines("PassengerCar"));
        let have: HashSet<String> = art.bridges.iter().map(|b| b.to_string()).collect();
        assert!(have.contains("carrier.Car -[SIBridge]-> transport.PassengerCar"));
        assert!(have.contains("transport.PassengerCar -[SIBridge]-> factory.Vehicle"));
        assert_eq!(art.bridges.len(), 2);
    }

    #[test]
    fn intra_articulation_rule_becomes_subclass_edge() {
        // §4.1: (transport.Owner => transport.Person) adds an edge to the
        // articulation graph making Owner a subclass of Person
        let (c, f) = simple_sources();
        let rules = parse_rules("transport.Owner => transport.Person\n").unwrap();
        let art = gen().generate(&rules, &[&c, &f]).unwrap();
        assert!(art.ontology.is_subclass("Owner", "Person"));
        assert!(art.bridges.is_empty());
    }

    #[test]
    fn conjunction_rule_matches_paper() {
        // §4.1: ((factory.CargoCarrier ∧ factory.Vehicle) => carrier.Trucks)
        // introduces CargoCarrierVehicle, subclass of Vehicle, CargoCarrier
        // and Trucks; Truck (subclass of both conjuncts) slots under it.
        let c = carrier();
        let f = factory();
        let rules =
            parse_rules("(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks\n").unwrap();
        let art = gen().generate(&rules, &[&c, &f]).unwrap();
        assert!(art.ontology.defines("CargoCarrierVehicle"));
        let have: HashSet<String> = art.bridges.iter().map(|b| b.to_string()).collect();
        for expected in [
            "transport.CargoCarrierVehicle -[SIBridge]-> factory.CargoCarrier",
            "transport.CargoCarrierVehicle -[SIBridge]-> factory.Vehicle",
            "transport.CargoCarrierVehicle -[SIBridge]-> carrier.Trucks",
            // common subclasses of the conjuncts: GoodsVehicle and Truck
            "factory.Truck -[SIBridge]-> transport.CargoCarrierVehicle",
            "factory.GoodsVehicle -[SIBridge]-> transport.CargoCarrierVehicle",
        ] {
            assert!(have.contains(expected), "missing {expected}; have {have:?}");
        }
    }

    #[test]
    fn disjunction_rule_matches_paper() {
        // §4.1: (factory.Vehicle => (carrier.Cars ∨ carrier.Trucks))
        // introduces CarsTrucks with Cars, Trucks and Vehicle under it.
        let c = carrier();
        let f = factory();
        let rules = parse_rules("factory.Vehicle => (carrier.Cars | carrier.Trucks)\n").unwrap();
        let art = gen().generate(&rules, &[&c, &f]).unwrap();
        assert!(art.ontology.defines("CarsTrucks"));
        let have: HashSet<String> = art.bridges.iter().map(|b| b.to_string()).collect();
        for expected in [
            "carrier.Cars -[SIBridge]-> transport.CarsTrucks",
            "carrier.Trucks -[SIBridge]-> transport.CarsTrucks",
            "factory.Vehicle -[SIBridge]-> transport.CarsTrucks",
        ] {
            assert!(have.contains(expected), "missing {expected}; have {have:?}");
        }
    }

    #[test]
    fn functional_rule_creates_conversion_bridges() {
        let c = carrier();
        let f = factory();
        let rules = parse_rules("DGToEuroFn(): carrier.DutchGuilders => transport.Euro\n").unwrap();
        let art = gen().generate(&rules, &[&c, &f]).unwrap();
        assert!(art.ontology.defines("Euro"));
        let have: HashSet<String> = art.bridges.iter().map(|b| b.to_string()).collect();
        assert!(have.contains("carrier.DutchGuilders -[DGToEuroFn]-> transport.Euro"));
        // inverse wired from the registry
        assert!(have.contains("transport.Euro -[EuroToDGFn]-> carrier.DutchGuilders"));
    }

    #[test]
    fn functional_rule_without_registered_inverse() {
        let c = carrier();
        let f = factory();
        // nothing registered in the conversion registry
        let cfg = GeneratorConfig { conversions: ConversionRegistry::new(), ..Default::default() };
        let rules = parse_rules("MysteryFn(): carrier.DutchGuilders => transport.Euro\n").unwrap();
        let art = ArticulationGenerator::with_config(cfg).generate(&rules, &[&c, &f]).unwrap();
        assert_eq!(art.bridges.len(), 1, "forward bridge only");
    }

    #[test]
    fn strict_terms_reject_unknown() {
        let (c, f) = simple_sources();
        let rules = parse_rules("carrier.Ghost => factory.Vehicle\n").unwrap();
        let err = gen().generate(&rules, &[&c, &f]).unwrap_err();
        assert!(matches!(err, ArticulateError::UnknownTerm(t) if t == "carrier.Ghost"));
        // non-strict mode lets it pass (term treated as declared)
        let cfg = GeneratorConfig { strict_terms: false, ..Default::default() };
        let art = ArticulationGenerator::with_config(cfg).generate(&rules, &[&c, &f]).unwrap();
        assert_eq!(art.bridges.len(), 3);
    }

    #[test]
    fn unknown_ontology_rejected() {
        let (c, f) = simple_sources();
        let rules = parse_rules("nowhere.X => factory.Vehicle\n").unwrap();
        let err = gen().generate(&rules, &[&c, &f]).unwrap_err();
        assert!(matches!(err, ArticulateError::UnknownOntology(o) if o == "nowhere"));
    }

    #[test]
    fn inherit_structure_lifts_source_subclasses() {
        // carrier.SUV -> transport.SUV and carrier.Cars -> transport.Cars
        // equivalences; SUV subclassOf Cars in carrier should appear in
        // the articulation.
        let c = carrier();
        let f = factory();
        let rules =
            parse_rules("carrier.SUV => transport.SUV\ncarrier.Cars => transport.Cars\n").unwrap();
        let art = gen().generate(&rules, &[&c, &f]).unwrap();
        assert!(art.ontology.is_subclass("SUV", "Cars"), "structure inherited per §4.2");
    }

    #[test]
    fn expansion_derives_transitive_bridges() {
        let c = carrier();
        let f = factory();
        let cfg = GeneratorConfig { expand_with_inference: true, ..Default::default() };
        let rules = parse_rules("carrier.Cars => transport.Vehicle\n").unwrap();
        let art = ArticulationGenerator::with_config(cfg).generate(&rules, &[&c, &f]).unwrap();
        // carrier.SUV subclassOf carrier.Cars, so SUV => transport.Vehicle
        // should be derivable
        assert!(
            art.bridges.iter().any(|b| b.kind == BridgeKind::Derived
                && b.src == Term::qualified("carrier", "SUV")
                && b.dst == Term::qualified("transport", "Vehicle")),
            "bridges: {:?}",
            art.bridges.iter().map(|b| b.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn expansion_reports_stats_and_reuses_shared_table() {
        let c = carrier();
        let f = factory();
        let table = Arc::new(Mutex::new(AtomTable::new()));
        let cfg = GeneratorConfig {
            expand_with_inference: true,
            atoms: Some(table.clone()),
            ..Default::default()
        };
        let generator = ArticulationGenerator::with_config(cfg);
        let rules = parse_rules("carrier.Cars => transport.Vehicle\n").unwrap();
        let (a1, s1) = generator.generate_with_stats(&rules, &[&c, &f]).unwrap();
        assert!(s1.seeded_facts > 0, "bridges and subclass edges seed facts");
        assert!(s1.inference.derived > 0, "transitive implications derived");
        assert!(s1.derived_bridges > 0, "SUV and friends bridge to transport.Vehicle");
        assert_eq!(s1.skipped_dead_nodes, 0, "no churn in this run");
        let interned = table.lock().unwrap().len();
        assert!(interned > 0, "shared table observed the run");
        // a second identical run reuses every symbol and memo
        let (a2, s2) = generator.generate_with_stats(&rules, &[&c, &f]).unwrap();
        assert_eq!(a1.bridges, a2.bridges);
        assert_eq!(s1, s2, "stats reproduce exactly");
        assert_eq!(table.lock().unwrap().len(), interned, "second run interns nothing new");
    }

    #[test]
    fn expansion_derives_bridges_for_dotted_source_names() {
        // a source named "acme.v2" keys under the canonical namespace
        // split ("acme" + "v2." prefix); the derived-bridge filter must
        // still match it, like the string engine's prefix matching did
        let mut g = onion_graph::OntGraph::new("acme.v2");
        g.ensure_edge_by_labels("Car", rel::SUBCLASS_OF, "Cars").unwrap();
        let src = Ontology::from_graph(g).unwrap();
        let f = factory();
        let cfg = GeneratorConfig { expand_with_inference: true, ..Default::default() };
        let mut rules = RuleSet::new();
        rules.push(ArticulationRule::term_implies(
            Term::qualified("acme.v2", "Cars"),
            Term::qualified("transport", "Vehicle"),
        ));
        let (art, stats) = ArticulationGenerator::with_config(cfg)
            .generate_with_stats(&rules, &[&src, &f])
            .unwrap();
        assert!(stats.inference.derived > 0, "Car => Vehicle is derivable");
        assert!(
            art.bridges.iter().any(|b| b.kind == BridgeKind::Derived
                && b.src == Term::qualified("acme", "v2.Car")
                && b.dst == Term::qualified("transport", "Vehicle")),
            "derived bridge for the dotted source survives (canonical term parts, \
             exactly as the string engine's split emitted); bridges: {:?}",
            art.bridges.iter().map(|b| b.to_string()).collect::<Vec<_>>()
        );
        assert!(stats.derived_bridges > 0);
    }

    #[test]
    fn expansion_without_shared_table_matches_shared_run() {
        let c = carrier();
        let f = factory();
        let rules = parse_rules("carrier.Cars => transport.Vehicle\n").unwrap();
        let local = ArticulationGenerator::with_config(GeneratorConfig {
            expand_with_inference: true,
            ..Default::default()
        });
        let shared = ArticulationGenerator::with_config(GeneratorConfig {
            expand_with_inference: true,
            atoms: Some(Arc::new(Mutex::new(AtomTable::new()))),
            ..Default::default()
        });
        let (a1, s1) = local.generate_with_stats(&rules, &[&c, &f]).unwrap();
        let (a2, s2) = shared.generate_with_stats(&rules, &[&c, &f]).unwrap();
        assert_eq!(a1.bridges, a2.bridges, "table sharing never changes results");
        assert_eq!(s1, s2);
    }

    #[test]
    fn generate_is_deterministic() {
        let c = carrier();
        let f = factory();
        let rules = onion_ontology::examples::fig2_rules();
        let a1 = gen().generate(&rules, &[&c, &f]).unwrap();
        let a2 = gen().generate(&rules, &[&c, &f]).unwrap();
        assert_eq!(a1.bridges, a2.bridges);
        assert!(a1.ontology.graph().same_shape(a2.ontology.graph()));
    }

    #[test]
    fn fig2_rules_generate_cleanly() {
        let c = carrier();
        let f = factory();
        let art = gen().generate(&onion_ontology::examples::fig2_rules(), &[&c, &f]).unwrap();
        let (terms, bridges, rules) = art.stats();
        assert!(terms >= 8, "articulation terms: {terms}");
        assert!(bridges >= 12, "bridges: {bridges}");
        assert_eq!(rules, onion_ontology::examples::fig2_rules().len());
        // articulation ontology is itself consistent
        assert!(onion_ontology::consistency::check(&art.ontology).is_empty());
    }
}
