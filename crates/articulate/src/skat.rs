//! SKAT-style candidate rule matchers.
//!
//! "Onion is based on the SKAT (Semantic Knowledge Articulation Tool)
//! system … Articulation rules are proposed by SKAT using expert rules
//! and other external knowledge sources or semantic lexicons (e.g.,
//! Wordnet) and verified by the expert." (§2.4)
//!
//! Each [`RuleMatcher`] proposes [`CandidateRule`]s between two source
//! ontologies; the [`MatcherPipeline`] runs a configurable mix and merges
//! proposals. The mix is an ablation axis of experiment B2
//! (exact-only vs +synonym vs +similarity).

use std::collections::HashMap;

use onion_lexicon::normalize::normalize;
use onion_lexicon::similarity::label_sim;
use onion_lexicon::Lexicon;
use onion_ontology::Ontology;
use onion_rules::{ArticulationRule, RuleSet, Term};

use crate::candidate::CandidateRule;

/// A candidate-rule proposer.
pub trait RuleMatcher {
    /// Matcher name (becomes candidate provenance).
    fn name(&self) -> &'static str;

    /// Proposes rules between `o1` and `o2`, given already-confirmed
    /// rules (structural matchers grow from them).
    fn propose(&self, o1: &Ontology, o2: &Ontology, existing: &RuleSet) -> Vec<CandidateRule>;
}

/// Sorted labels of an ontology's nodes.
fn labels(o: &Ontology) -> Vec<String> {
    let mut v: Vec<String> = o.graph().nodes().map(|n| n.label.to_string()).collect();
    v.sort();
    v
}

/// normalised label → original labels (an ontology may normalise two
/// labels identically, e.g. `Cars` and `Car`).
fn normalized_index(o: &Ontology) -> HashMap<String, Vec<String>> {
    let mut m: HashMap<String, Vec<String>> = HashMap::new();
    for l in labels(o) {
        m.entry(normalize(&l)).or_default().push(l);
    }
    m
}

fn simple(o1: &Ontology, a: &str, o2: &Ontology, b: &str) -> ArticulationRule {
    ArticulationRule::term_implies(Term::qualified(o1.name(), a), Term::qualified(o2.name(), b))
}

/// Proposes `o1.X ⇒ o2.X` when both ontologies use the same label:
/// exact match at confidence 1.0, equal after normalisation
/// (`Trucks`/`truck`) at 0.95.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactLabelMatcher;

impl RuleMatcher for ExactLabelMatcher {
    fn name(&self) -> &'static str {
        "exact-label"
    }

    fn propose(&self, o1: &Ontology, o2: &Ontology, _existing: &RuleSet) -> Vec<CandidateRule> {
        let idx2 = normalized_index(o2);
        let mut out = Vec::new();
        for l1 in labels(o1) {
            if let Some(matches) = idx2.get(&normalize(&l1)) {
                for l2 in matches {
                    let conf = if &l1 == l2 { 1.0 } else { 0.95 };
                    out.push(CandidateRule::new(
                        simple(o1, &l1, o2, l2),
                        conf,
                        self.name(),
                        format!("label {l1:?} ~ {l2:?}"),
                    ));
                }
            }
        }
        out
    }
}

/// Proposes rules from lexicon knowledge: synonyms become equivalence
/// candidates (0.9), hypernyms become directional implications (0.8) —
/// `o1.Car ⇒ o2.Vehicle` when the lexicon says a car is a kind of
/// vehicle.
#[derive(Debug, Clone)]
pub struct SynonymMatcher {
    lexicon: Lexicon,
    /// Also propose directional hypernym rules.
    pub hypernyms: bool,
}

impl SynonymMatcher {
    /// Matcher backed by `lexicon`, hypernym proposals enabled.
    pub fn new(lexicon: Lexicon) -> Self {
        SynonymMatcher { lexicon, hypernyms: true }
    }
}

impl RuleMatcher for SynonymMatcher {
    fn name(&self) -> &'static str {
        "synonym"
    }

    fn propose(&self, o1: &Ontology, o2: &Ontology, _existing: &RuleSet) -> Vec<CandidateRule> {
        let idx2 = normalized_index(o2);
        let l2_known: Vec<&String> = idx2.keys().filter(|w| self.lexicon.contains(w)).collect();
        let mut out = Vec::new();
        for l1 in labels(o1) {
            let n1 = normalize(&l1);
            if !self.lexicon.contains(&n1) {
                continue;
            }
            // synonym expansion through the lexicon index (cheap)
            for syn in self.lexicon.synonyms_of(&n1) {
                if let Some(matches) = idx2.get(syn) {
                    for l2 in matches {
                        out.push(CandidateRule::new(
                            simple(o1, &l1, o2, l2),
                            0.9,
                            self.name(),
                            format!("{l1:?} synonym of {l2:?}"),
                        ));
                    }
                }
            }
            if self.hypernyms {
                // directional: l1 ⇒ l2 when l2 is a hypernym of l1
                for n2 in &l2_known {
                    if self.lexicon.is_hypernym_of(n2, &n1) {
                        for l2 in &idx2[n2.as_str()] {
                            out.push(CandidateRule::new(
                                simple(o1, &l1, o2, l2),
                                0.8,
                                self.name(),
                                format!("{l2:?} hypernym of {l1:?}"),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

/// Proposes pairs whose labels score at least `threshold` under the
/// combined lexical similarity (token overlap + Jaro-Winkler); the
/// fallback when the lexicon is silent. Confidence is the similarity
/// scaled into `[0, 0.85]` so lexicon knowledge outranks string luck.
#[derive(Debug, Clone, Copy)]
pub struct SimilarityMatcher {
    /// Minimum similarity to propose.
    pub threshold: f64,
    /// Pair-comparison budget; the matcher stops proposing past it
    /// (guards the O(n·m) scan on large inputs).
    pub max_pairs: usize,
}

impl Default for SimilarityMatcher {
    fn default() -> Self {
        SimilarityMatcher { threshold: 0.84, max_pairs: 4_000_000 }
    }
}

impl RuleMatcher for SimilarityMatcher {
    fn name(&self) -> &'static str {
        "similarity"
    }

    fn propose(&self, o1: &Ontology, o2: &Ontology, _existing: &RuleSet) -> Vec<CandidateRule> {
        let l1s = labels(o1);
        let l2s = labels(o2);
        let mut out = Vec::new();
        let mut budget = self.max_pairs;
        'outer: for l1 in &l1s {
            for l2 in &l2s {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if normalize(l1) == normalize(l2) {
                    continue; // the exact matcher owns these
                }
                let sim = label_sim(l1, l2);
                if sim >= self.threshold {
                    out.push(CandidateRule::new(
                        simple(o1, l1, o2, l2),
                        0.85 * sim,
                        self.name(),
                        format!("label_sim({l1:?}, {l2:?}) = {sim:.3}"),
                    ));
                }
            }
        }
        out
    }
}

/// Grows matches structurally from confirmed rules: if `o1.A ⇒ o2.B` is
/// confirmed, the superclasses (and subclasses) of `A` and `B` are
/// plausible matches — proposed when their labels are at least mildly
/// similar. Models SKAT's "expert rules" that exploit ontology structure.
#[derive(Debug, Clone, Copy)]
pub struct StructuralMatcher {
    /// Minimum label similarity for a structural proposal.
    pub min_sim: f64,
}

impl Default for StructuralMatcher {
    fn default() -> Self {
        StructuralMatcher { min_sim: 0.5 }
    }
}

impl RuleMatcher for StructuralMatcher {
    fn name(&self) -> &'static str {
        "structural"
    }

    fn propose(&self, o1: &Ontology, o2: &Ontology, existing: &RuleSet) -> Vec<CandidateRule> {
        let mut out = Vec::new();
        for rule in existing.iter() {
            if !rule.is_simple_implication() {
                continue;
            }
            let terms = rule.terms();
            let (a, b) = (terms[0], terms[1]);
            // orient to (o1 term, o2 term) regardless of rule direction
            let (t1, t2) = if a.in_ontology(o1.name()) && b.in_ontology(o2.name()) {
                (&a.name, &b.name)
            } else if a.in_ontology(o2.name()) && b.in_ontology(o1.name()) {
                (&b.name, &a.name)
            } else {
                continue;
            };
            for (n1s, n2s, where_) in [
                (o1.superclasses(t1), o2.superclasses(t2), "superclasses"),
                (o1.subclasses(t1), o2.subclasses(t2), "subclasses"),
            ] {
                for n1 in &n1s {
                    for n2 in &n2s {
                        let sim = label_sim(n1, n2);
                        if sim >= self.min_sim {
                            out.push(CandidateRule::new(
                                simple(o1, n1, o2, n2),
                                (0.4 + 0.45 * sim).min(0.85),
                                self.name(),
                                format!("{where_} of confirmed {t1:?} ~ {t2:?}, sim {sim:.2}"),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

/// A configurable matcher stack.
pub struct MatcherPipeline {
    matchers: Vec<Box<dyn RuleMatcher>>,
}

impl MatcherPipeline {
    /// Empty pipeline.
    pub fn new() -> Self {
        MatcherPipeline { matchers: Vec::new() }
    }

    /// The full default stack: exact → synonym (with the given lexicon) →
    /// similarity → structural.
    pub fn standard(lexicon: Lexicon) -> Self {
        Self::new()
            .with(ExactLabelMatcher)
            .with(SynonymMatcher::new(lexicon))
            .with(SimilarityMatcher::default())
            .with(StructuralMatcher::default())
    }

    /// Appends a matcher.
    pub fn with(mut self, m: impl RuleMatcher + 'static) -> Self {
        self.matchers.push(Box::new(m));
        self
    }

    /// Number of matchers.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// True if no matchers.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }

    /// Runs every matcher, merges duplicates (max confidence wins) and
    /// drops candidates whose rule is already confirmed.
    pub fn propose(&self, o1: &Ontology, o2: &Ontology, existing: &RuleSet) -> Vec<CandidateRule> {
        let mut all = Vec::new();
        for m in &self.matchers {
            all.extend(m.propose(o1, o2, existing));
        }
        let merged = CandidateRule::merge(all);
        merged.into_iter().filter(|c| !existing.rules.contains(&c.rule)).collect()
    }
}

impl Default for MatcherPipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_lexicon::builtin::transport_lexicon;
    use onion_ontology::examples::{carrier, factory};
    use onion_ontology::OntologyBuilder;

    #[test]
    fn exact_matcher_finds_shared_labels() {
        let c = carrier();
        let f = factory();
        let cands = ExactLabelMatcher.propose(&c, &f, &RuleSet::new());
        let texts: Vec<String> = cands.iter().map(|c| c.rule.to_string()).collect();
        assert!(texts.contains(&"carrier.Transportation => factory.Transportation".to_string()));
        assert!(texts.contains(&"carrier.Price => factory.Price".to_string()));
        assert!(cands.iter().all(|c| c.confidence >= 0.95));
    }

    #[test]
    fn exact_matcher_normalised_variants() {
        let a = OntologyBuilder::new("a").class("Trucks").build().unwrap();
        let b = OntologyBuilder::new("b").class("truck").build().unwrap();
        let cands = ExactLabelMatcher.propose(&a, &b, &RuleSet::new());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].confidence, 0.95);
    }

    #[test]
    fn synonym_matcher_uses_lexicon() {
        let a = OntologyBuilder::new("a").class("Automobile").build().unwrap();
        let b = OntologyBuilder::new("b").class("Car").build().unwrap();
        let m = SynonymMatcher::new(transport_lexicon());
        let cands = m.propose(&a, &b, &RuleSet::new());
        assert!(cands
            .iter()
            .any(|c| c.rule.to_string() == "a.Automobile => b.Car" && c.confidence == 0.9));
    }

    #[test]
    fn synonym_matcher_hypernym_direction() {
        let a = OntologyBuilder::new("a").class("Car").build().unwrap();
        let b = OntologyBuilder::new("b").class("Vehicle").build().unwrap();
        let m = SynonymMatcher::new(transport_lexicon());
        let cands = m.propose(&a, &b, &RuleSet::new());
        // car ⇒ vehicle proposed (vehicle hypernym of car), not reverse
        assert!(cands.iter().any(|c| c.rule.to_string() == "a.Car => b.Vehicle"));
        let rev = m.propose(&b, &a, &RuleSet::new());
        assert!(!rev.iter().any(|c| c.rule.to_string() == "b.Vehicle => a.Car"));
    }

    #[test]
    fn synonym_matcher_without_hypernyms() {
        let a = OntologyBuilder::new("a").class("Car").build().unwrap();
        let b = OntologyBuilder::new("b").class("Vehicle").build().unwrap();
        let mut m = SynonymMatcher::new(transport_lexicon());
        m.hypernyms = false;
        assert!(m.propose(&a, &b, &RuleSet::new()).is_empty());
    }

    #[test]
    fn similarity_matcher_catches_typos() {
        let a = OntologyBuilder::new("a").class("Vehicle").build().unwrap();
        let b = OntologyBuilder::new("b").class("Vehicles2").build().unwrap();
        let m = SimilarityMatcher { threshold: 0.8, max_pairs: 1000 };
        let cands = m.propose(&a, &b, &RuleSet::new());
        assert_eq!(cands.len(), 1);
        assert!(cands[0].confidence < 0.9, "similarity ranks below lexicon");
    }

    #[test]
    fn similarity_matcher_skips_exact_territory() {
        let a = OntologyBuilder::new("a").class("Trucks").build().unwrap();
        let b = OntologyBuilder::new("b").class("truck").build().unwrap();
        let m = SimilarityMatcher { threshold: 0.5, max_pairs: 1000 };
        assert!(m.propose(&a, &b, &RuleSet::new()).is_empty());
    }

    #[test]
    fn similarity_matcher_respects_budget() {
        let mut ab = OntologyBuilder::new("a");
        let mut bb = OntologyBuilder::new("b");
        for i in 0..20 {
            ab = ab.class(&format!("TermNumber{i}"));
            bb = bb.class(&format!("TermNumber{i}x"));
        }
        let a = ab.build().unwrap();
        let b = bb.build().unwrap();
        let unlimited = SimilarityMatcher { threshold: 0.9, max_pairs: 10_000 }.propose(
            &a,
            &b,
            &RuleSet::new(),
        );
        let limited =
            SimilarityMatcher { threshold: 0.9, max_pairs: 5 }.propose(&a, &b, &RuleSet::new());
        assert!(limited.len() < unlimited.len());
    }

    #[test]
    fn structural_matcher_grows_from_confirmed() {
        let c = carrier();
        let f = factory();
        let mut existing = RuleSet::new();
        existing.push(onion_rules::parser::parse_rule("carrier.Cars => factory.Vehicle").unwrap());
        let cands = StructuralMatcher::default().propose(&c, &f, &existing);
        // superclasses: carrier.Transportation ~ factory.Transportation
        assert!(
            cands
                .iter()
                .any(|c| c.rule.to_string() == "carrier.Transportation => factory.Transportation"),
            "{:?}",
            cands.iter().map(|c| c.rule.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn structural_matcher_needs_confirmed_rules() {
        let c = carrier();
        let f = factory();
        assert!(StructuralMatcher::default().propose(&c, &f, &RuleSet::new()).is_empty());
    }

    #[test]
    fn pipeline_merges_and_filters_existing() {
        let c = carrier();
        let f = factory();
        let pipeline = MatcherPipeline::standard(transport_lexicon());
        assert_eq!(pipeline.len(), 4);
        let mut existing = RuleSet::new();
        existing.push(
            onion_rules::parser::parse_rule("carrier.Transportation => factory.Transportation")
                .unwrap(),
        );
        let cands = pipeline.propose(&c, &f, &existing);
        // merged: no duplicates
        let mut texts: Vec<String> = cands.iter().map(|c| c.rule.to_string()).collect();
        let before = texts.len();
        texts.dedup();
        assert_eq!(before, texts.len());
        // filtered: the existing rule is not re-proposed
        assert!(!texts.contains(&"carrier.Transportation => factory.Transportation".to_string()));
        // sorted by confidence
        assert!(cands.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn pipeline_finds_the_fig2_key_bridges() {
        let c = carrier();
        let f = factory();
        let cands = MatcherPipeline::standard(transport_lexicon()).propose(&c, &f, &RuleSet::new());
        let texts: Vec<String> = cands.iter().map(|c| c.rule.to_string()).collect();
        // cars are vehicles (lexicon hypernym)
        assert!(texts.contains(&"carrier.Cars => factory.Vehicle".to_string()));
        // trucks match trucks (normalised label)
        assert!(texts.contains(&"carrier.Trucks => factory.Truck".to_string()));
    }
}
