//! The domain expert in the loop.
//!
//! In the paper, "the expert has the final word on the articulation
//! generation and is responsible to correct inconsistencies in the
//! suggested articulation" (§2.4). A human drives the ONION viewer; the
//! reproduction substitutes deterministic policies behind the [`Expert`]
//! trait (DESIGN.md substitution table) so that the identical engine
//! control flow — propose → confirm → generate → iterate — runs
//! unattended and is measurable.

use onion_graph::hash::FxHashSet;
use onion_rules::{ArticulationRule, AtomId, AtomTable, Term};

use crate::candidate::CandidateRule;

/// An expert's ruling on a candidate rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Accept the rule as proposed.
    Accept,
    /// Reject the rule.
    Reject,
    /// Replace the proposal with a corrected rule (the viewer lets the
    /// expert "update the suggested bridges", §2.2).
    Modify(ArticulationRule),
}

/// A reviewing expert.
pub trait Expert {
    /// Review one candidate.
    fn review(&mut self, candidate: &CandidateRule) -> Verdict;

    /// Called when a round completes; gives scripted experts a chance to
    /// inject additional rules of their own ("supply new rules for the
    /// generation of the articulation", §2.2). Default: none.
    fn supply_rules(&mut self) -> Vec<ArticulationRule> {
        Vec::new()
    }
}

/// Accepts everything — the fully-automatic end of the paper's
/// "balance between an automated (and perhaps unreliable) system, and a
/// manual system" (§1).
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptAll;

impl Expert for AcceptAll {
    fn review(&mut self, _candidate: &CandidateRule) -> Verdict {
        Verdict::Accept
    }
}

/// Accepts candidates at or above a confidence threshold.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdExpert {
    /// Minimum confidence to accept.
    pub threshold: f64,
}

impl ThresholdExpert {
    /// Expert accepting confidence ≥ `threshold`.
    pub fn new(threshold: f64) -> Self {
        ThresholdExpert { threshold }
    }
}

impl Expert for ThresholdExpert {
    fn review(&mut self, candidate: &CandidateRule) -> Verdict {
        if candidate.confidence >= self.threshold {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

/// Replays a fixed decision script, then falls back to rejecting.
/// Models a specific recorded expert session.
#[derive(Debug, Clone, Default)]
pub struct ScriptedExpert {
    script: Vec<Verdict>,
    next: usize,
    extra_rules: Vec<ArticulationRule>,
}

impl ScriptedExpert {
    /// Expert that will answer with `script` in order.
    pub fn new(script: Vec<Verdict>) -> Self {
        ScriptedExpert { script, next: 0, extra_rules: Vec::new() }
    }

    /// Queues rules the expert will volunteer after the next round.
    pub fn with_supplied_rules(mut self, rules: Vec<ArticulationRule>) -> Self {
        self.extra_rules = rules;
        self
    }

    /// How many verdicts have been consumed.
    pub fn consumed(&self) -> usize {
        self.next
    }
}

impl Expert for ScriptedExpert {
    fn review(&mut self, _candidate: &CandidateRule) -> Verdict {
        let v = self.script.get(self.next).cloned().unwrap_or(Verdict::Reject);
        self.next += 1;
        v
    }

    fn supply_rules(&mut self) -> Vec<ArticulationRule> {
        std::mem::take(&mut self.extra_rules)
    }
}

/// Knows the planted ground-truth correspondence (from the workload
/// generator) and accepts exactly the simple implications it contains —
/// optionally with label noise to model expert error. Enables
/// precision/recall measurement in experiment B2.
///
/// Truth pairs are interned into a private [`AtomTable`] at
/// construction; each review then probes by looked-up [`AtomId`]s —
/// no `"onto.Term"` string is built per candidate (the B2 oracle loop
/// reviews every proposed pair every round).
#[derive(Debug, Clone)]
pub struct OracleExpert {
    atoms: AtomTable,
    /// Accepted (from, to) pairs over `atoms`.
    truth: FxHashSet<(AtomId, AtomId)>,
    /// Probability of flipping a verdict (deterministic counter-based,
    /// not RNG, so runs reproduce exactly).
    noise_period: Option<usize>,
    reviewed: usize,
}

impl OracleExpert {
    /// Oracle accepting exactly `pairs` (qualified term strings).
    pub fn new(pairs: impl IntoIterator<Item = (String, String)>) -> Self {
        let mut atoms = AtomTable::new();
        let truth =
            pairs.into_iter().map(|(from, to)| (atoms.intern(&from), atoms.intern(&to))).collect();
        OracleExpert { atoms, truth, noise_period: None, reviewed: 0 }
    }

    /// Flips every `period`-th verdict (models an imperfect expert);
    /// `period == 0` disables noise.
    pub fn with_noise_period(mut self, period: usize) -> Self {
        self.noise_period = if period == 0 { None } else { Some(period) };
        self
    }

    /// Whether the pair is in the planted truth.
    pub fn knows(&self, from: &Term, to: &Term) -> bool {
        let (Some(f), Some(t)) = (self.atoms.lookup_term(from), self.atoms.lookup_term(to)) else {
            return false; // a term outside the truth vocabulary
        };
        self.truth.contains(&(f, t))
    }
}

impl Expert for OracleExpert {
    fn review(&mut self, candidate: &CandidateRule) -> Verdict {
        self.reviewed += 1;
        let base = match &candidate.rule {
            ArticulationRule::Implication { chain } if candidate.rule.is_simple_implication() => {
                let from = chain[0].terms()[0];
                let to = chain[1].terms()[0];
                // equivalence counts in both directions
                if self.knows(from, to) || self.knows(to, from) {
                    Verdict::Accept
                } else {
                    Verdict::Reject
                }
            }
            // compound and functional rules pass through on confidence
            _ => {
                if candidate.confidence >= 0.5 {
                    Verdict::Accept
                } else {
                    Verdict::Reject
                }
            }
        };
        if let Some(p) = self.noise_period {
            if self.reviewed.is_multiple_of(p) {
                return match base {
                    Verdict::Accept => Verdict::Reject,
                    Verdict::Reject => Verdict::Accept,
                    m @ Verdict::Modify(_) => m,
                };
            }
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(a: &str, b: &str, conf: f64) -> CandidateRule {
        CandidateRule::new(
            ArticulationRule::term_implies(Term::qualified("o1", a), Term::qualified("o2", b)),
            conf,
            "test",
            "",
        )
    }

    #[test]
    fn accept_all_accepts() {
        assert_eq!(AcceptAll.review(&cand("A", "B", 0.0)), Verdict::Accept);
    }

    #[test]
    fn threshold_splits() {
        let mut e = ThresholdExpert::new(0.8);
        assert_eq!(e.review(&cand("A", "B", 0.9)), Verdict::Accept);
        assert_eq!(e.review(&cand("A", "B", 0.8)), Verdict::Accept);
        assert_eq!(e.review(&cand("A", "B", 0.79)), Verdict::Reject);
    }

    #[test]
    fn scripted_replays_then_rejects() {
        let mut e = ScriptedExpert::new(vec![Verdict::Accept, Verdict::Reject]);
        assert_eq!(e.review(&cand("A", "B", 1.0)), Verdict::Accept);
        assert_eq!(e.review(&cand("C", "D", 1.0)), Verdict::Reject);
        assert_eq!(e.review(&cand("E", "F", 1.0)), Verdict::Reject, "script exhausted");
        assert_eq!(e.consumed(), 3);
    }

    #[test]
    fn scripted_supplies_rules_once() {
        let r =
            ArticulationRule::term_implies(Term::qualified("a", "X"), Term::qualified("b", "Y"));
        let mut e = ScriptedExpert::new(vec![]).with_supplied_rules(vec![r.clone()]);
        assert_eq!(e.supply_rules(), vec![r]);
        assert!(e.supply_rules().is_empty(), "supplied only once");
    }

    #[test]
    fn oracle_accepts_truth_both_directions() {
        let mut e = OracleExpert::new([("o1.A".to_string(), "o2.B".to_string())]);
        assert_eq!(e.review(&cand("A", "B", 0.1)), Verdict::Accept);
        // reversed proposal also accepted (equivalence semantics)
        let rev = CandidateRule::new(
            ArticulationRule::term_implies(Term::qualified("o2", "B"), Term::qualified("o1", "A")),
            0.1,
            "test",
            "",
        );
        assert_eq!(e.review(&rev), Verdict::Accept);
        assert_eq!(e.review(&cand("A", "C", 0.99)), Verdict::Reject);
    }

    #[test]
    fn oracle_noise_flips_periodically() {
        let mut e =
            OracleExpert::new([("o1.A".to_string(), "o2.B".to_string())]).with_noise_period(2);
        assert_eq!(e.review(&cand("A", "B", 1.0)), Verdict::Accept); // 1st: true verdict
        assert_eq!(e.review(&cand("A", "B", 1.0)), Verdict::Reject); // 2nd: flipped
        assert_eq!(e.review(&cand("X", "Y", 1.0)), Verdict::Reject); // 3rd: true verdict
        assert_eq!(e.review(&cand("X", "Y", 1.0)), Verdict::Accept); // 4th: flipped
    }

    #[test]
    fn oracle_compound_rules_by_confidence() {
        let mut e = OracleExpert::new([]);
        let compound = CandidateRule::new(
            onion_rules::parser::parse_rule("(a.X & a.Y) => b.Z").unwrap(),
            0.9,
            "test",
            "",
        );
        assert_eq!(e.review(&compound), Verdict::Accept);
    }
}
