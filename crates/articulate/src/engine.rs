//! The iterative articulation engine (Fig. 1, §2.4).
//!
//! "The articulation generator takes the articulation rules and
//! generates the articulation … which is then forwarded to the expert
//! for confirmation. … If the expert suggests modifications or new
//! rules, they are forwarded to SKAT for further generation of new
//! articulation rules. This process is iteratively repeated until the
//! expert is satisfied with the generated articulation."

use onion_ontology::Ontology;
use onion_rules::RuleSet;

use crate::articulation::Articulation;
use crate::expert::{Expert, Verdict};
use crate::generator::{ArticulationGenerator, GeneratorConfig, GeneratorStats};
use crate::skat::MatcherPipeline;
use crate::Result;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum propose/confirm rounds (the expert can stop earlier by
    /// rejecting everything new).
    pub max_rounds: usize,
    /// Generator settings.
    pub generator: GeneratorConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { max_rounds: 4, generator: GeneratorConfig::default() }
    }
}

/// Outcome counters for one engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Propose/confirm rounds executed.
    pub rounds: usize,
    /// Candidates shown to the expert (across rounds).
    pub proposed: usize,
    /// Accepted as-is.
    pub accepted: usize,
    /// Rejected.
    pub rejected: usize,
    /// Accepted after expert modification.
    pub modified: usize,
    /// Rules volunteered by the expert.
    pub supplied: usize,
    /// Counters of the final generation pass (inference expansion work,
    /// skipped dead nodes, derived bridges).
    pub generator: GeneratorStats,
}

/// The propose → confirm → generate loop.
pub struct ArticulationEngine {
    pipeline: MatcherPipeline,
    config: EngineConfig,
}

impl ArticulationEngine {
    /// Engine over a matcher pipeline with default config.
    pub fn new(pipeline: MatcherPipeline) -> Self {
        ArticulationEngine { pipeline, config: EngineConfig::default() }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the loop between two sources, starting from `seed_rules`
    /// (expert rules supplied up front; may be empty). Returns the final
    /// articulation and a report.
    pub fn run(
        &self,
        o1: &Ontology,
        o2: &Ontology,
        expert: &mut dyn Expert,
        seed_rules: RuleSet,
    ) -> Result<(Articulation, EngineReport)> {
        let mut rules = seed_rules;
        let mut report = EngineReport::default();

        for _ in 0..self.config.max_rounds {
            report.rounds += 1;
            let candidates = self.pipeline.propose(o1, o2, &rules);
            let mut new_this_round = 0usize;
            for cand in candidates {
                report.proposed += 1;
                match expert.review(&cand) {
                    Verdict::Accept => {
                        if rules.push(cand.rule) {
                            report.accepted += 1;
                            new_this_round += 1;
                        }
                    }
                    Verdict::Reject => report.rejected += 1,
                    Verdict::Modify(rule) => {
                        if rules.push(rule) {
                            report.modified += 1;
                            new_this_round += 1;
                        }
                    }
                }
            }
            for rule in expert.supply_rules() {
                if rules.push(rule) {
                    report.supplied += 1;
                    new_this_round += 1;
                }
            }
            if new_this_round == 0 {
                break; // fixpoint: the expert is satisfied
            }
        }

        let generator = ArticulationGenerator::with_config(self.config.generator.clone());
        let (articulation, gen_stats) = generator.generate_with_stats(&rules, &[o1, o2])?;
        report.generator = gen_stats;
        Ok((articulation, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::{AcceptAll, OracleExpert, ScriptedExpert, ThresholdExpert};
    use crate::skat::{ExactLabelMatcher, StructuralMatcher};
    use onion_lexicon::builtin::transport_lexicon;
    use onion_ontology::examples::{carrier, factory};
    use onion_rules::{parse_rules, ArticulationRule, Term};

    fn engine() -> ArticulationEngine {
        ArticulationEngine::new(MatcherPipeline::standard(transport_lexicon()))
    }

    #[test]
    fn accept_all_reaches_fixpoint() {
        let c = carrier();
        let f = factory();
        let (art, report) = engine().run(&c, &f, &mut AcceptAll, RuleSet::new()).unwrap();
        assert!(report.accepted > 0);
        assert!(report.rounds >= 2, "second round confirms fixpoint");
        assert!(art.bridges.len() >= report.accepted, "every rule yields bridges");
        assert_eq!(report.modified, 0);
    }

    #[test]
    fn threshold_expert_accepts_fewer_than_accept_all() {
        let c = carrier();
        let f = factory();
        let (_, all) = engine().run(&c, &f, &mut AcceptAll, RuleSet::new()).unwrap();
        let (_, picky) =
            engine().run(&c, &f, &mut ThresholdExpert::new(0.95), RuleSet::new()).unwrap();
        assert!(picky.accepted < all.accepted);
        assert!(picky.rejected > 0);
    }

    #[test]
    fn structural_matcher_needs_second_round() {
        // pipeline of exact + structural only: structural finds nothing in
        // round 1, grows from round-1 acceptances in round 2
        let c = carrier();
        let f = factory();
        let pipeline =
            MatcherPipeline::new().with(ExactLabelMatcher).with(StructuralMatcher::default());
        let eng = ArticulationEngine::new(pipeline);
        let mut seed = RuleSet::new();
        seed.push(onion_rules::parser::parse_rule("carrier.Cars => factory.Vehicle").unwrap());
        let (_, report) = eng.run(&c, &f, &mut AcceptAll, seed).unwrap();
        assert!(report.rounds >= 2);
        assert!(report.accepted > 0);
    }

    #[test]
    fn scripted_expert_modification_lands_in_rules() {
        let c = carrier();
        let f = factory();
        let replacement = ArticulationRule::term_implies(
            Term::qualified("carrier", "Cars"),
            Term::qualified("transport", "Automobiles"),
        );
        let mut expert = ScriptedExpert::new(vec![Verdict::Modify(replacement.clone())]);
        let (art, report) = engine().run(&c, &f, &mut expert, RuleSet::new()).unwrap();
        assert_eq!(report.modified, 1);
        assert!(art.rules.rules.contains(&replacement));
        assert!(art.ontology.defines("Automobiles"));
    }

    #[test]
    fn expert_supplied_rules_included() {
        let c = carrier();
        let f = factory();
        let supplied =
            parse_rules("PSToEuroFn(): factory.PoundSterling => transport.Euro\n").unwrap().rules;
        let mut expert = ScriptedExpert::new(vec![]).with_supplied_rules(supplied);
        let (art, report) = engine().run(&c, &f, &mut expert, RuleSet::new()).unwrap();
        assert_eq!(report.supplied, 1);
        assert!(art.ontology.defines("Euro"));
    }

    #[test]
    fn oracle_expert_gives_exact_truth() {
        let c = carrier();
        let f = factory();
        let mut oracle = OracleExpert::new([
            ("carrier.Trucks".to_string(), "factory.Truck".to_string()),
            ("carrier.Transportation".to_string(), "factory.Transportation".to_string()),
        ]);
        let (art, report) = engine().run(&c, &f, &mut oracle, RuleSet::new()).unwrap();
        assert_eq!(report.accepted, 2, "exactly the planted truth accepted");
        assert!(art.rules.len() == 2);
    }

    #[test]
    fn max_rounds_caps_iteration() {
        let c = carrier();
        let f = factory();
        let cfg = EngineConfig { max_rounds: 1, ..Default::default() };
        let (_, report) =
            engine().with_config(cfg).run(&c, &f, &mut AcceptAll, RuleSet::new()).unwrap();
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn seed_rules_survive_into_articulation() {
        let c = carrier();
        let f = factory();
        let seed = onion_ontology::examples::fig2_rules();
        let seed_len = seed.len();
        let (art, _) = engine().run(&c, &f, &mut ThresholdExpert::new(2.0), seed).unwrap();
        // impossible threshold: nothing new accepted, seeds still there
        assert_eq!(art.rules.len(), seed_len);
    }
}
