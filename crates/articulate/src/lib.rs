//! # onion-articulate
//!
//! The articulation engine — the primary contribution of the paper
//! (§2.4, §4). Given two (or more) source ontologies, the engine:
//!
//! 1. **proposes** candidate articulation rules via SKAT-style matchers
//!    ([`skat`]): exact label match, lexicon synonym/hypernym lookup,
//!    string similarity, and structural propagation;
//! 2. submits them to an **expert** ([`expert`]) — in the paper a human
//!    at the ONION viewer, here a pluggable policy (accept-all,
//!    confidence threshold, scripted, or a ground-truth oracle for
//!    measurable precision/recall);
//! 3. **generates** the articulation ([`generator`]): the articulation
//!    ontology graph plus the semantic bridges (`SIBridge` edges and
//!    functional-conversion edges) linking it to the sources, following
//!    the §4.1 translation of simple, cascaded, conjunctive, disjunctive
//!    and functional rules;
//! 4. optionally lets the **inference engine** derive further bridges
//!    (transitive semantic implication), and iterates propose → confirm →
//!    generate until fixpoint ([`engine`]);
//! 5. **maintains** the articulation incrementally as sources change
//!    ([`maintain`]) — the scalability story of §5.3 / experiment B1.

pub mod articulation;
pub mod candidate;
pub mod engine;
pub mod expert;
pub mod generator;
pub mod maintain;
pub mod persist;
pub mod skat;

pub use articulation::{Articulation, Bridge, BridgeKind};
pub use candidate::CandidateRule;
pub use engine::{ArticulationEngine, EngineConfig, EngineReport};
pub use expert::{AcceptAll, Expert, OracleExpert, ScriptedExpert, ThresholdExpert, Verdict};
pub use generator::{ArticulationGenerator, GeneratorConfig, GeneratorStats};
pub use skat::{
    ExactLabelMatcher, MatcherPipeline, RuleMatcher, SimilarityMatcher, StructuralMatcher,
    SynonymMatcher,
};

/// Errors raised while articulating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArticulateError {
    /// A rule referenced a term absent from its source ontology.
    UnknownTerm(String),
    /// A rule referenced an ontology that was not supplied.
    UnknownOntology(String),
    /// Underlying graph failure.
    Graph(onion_graph::GraphError),
    /// Underlying rule failure.
    Rule(onion_rules::RuleError),
}

impl std::fmt::Display for ArticulateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArticulateError::UnknownTerm(t) => write!(f, "unknown term {t}"),
            ArticulateError::UnknownOntology(o) => write!(f, "unknown ontology {o:?}"),
            ArticulateError::Graph(e) => write!(f, "graph error: {e}"),
            ArticulateError::Rule(e) => write!(f, "rule error: {e}"),
        }
    }
}

impl std::error::Error for ArticulateError {}

impl From<onion_graph::GraphError> for ArticulateError {
    fn from(e: onion_graph::GraphError) -> Self {
        ArticulateError::Graph(e)
    }
}

impl From<onion_rules::RuleError> for ArticulateError {
    fn from(e: onion_rules::RuleError) -> Self {
        ArticulateError::Rule(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ArticulateError>;
