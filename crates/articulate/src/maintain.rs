//! Incremental articulation maintenance under source evolution.
//!
//! The paper's scalability argument (§1, §5.3, §6): sources "can be
//! developed and maintained independently. Changes to portions of an
//! ontology that are not articulated with portions of another ontology
//! can be made without effecting the rest of the system." The Difference
//! operator identifies exactly the independent region; here we implement
//! the maintenance procedure that exploits it:
//!
//! 1. **triage** — partition a source's op journal into *relevant* ops
//!    (touching articulation-bridged terms) and *irrelevant* ops; the
//!    irrelevant ones cost `O(#bridged-terms)` set probes and nothing
//!    else;
//! 2. **repair** — for relevant deletions, drop the bridges and rules
//!    that mention deleted terms; for relevant additions, optionally
//!    re-propose candidates scoped to the touched labels.
//!
//! Experiment B1 measures this path against the global-merge baseline's
//! full rebuild; experiment B8 sweeps the relevant fraction.

use std::collections::HashSet;

use onion_graph::ops::GraphOp;
use onion_ontology::Ontology;
use onion_rules::{ArticulationRule, RuleSet};

use crate::articulation::Articulation;
use crate::expert::{Expert, Verdict};
use crate::generator::ArticulationGenerator;
use crate::skat::MatcherPipeline;
use crate::Result;

/// Counters for one maintenance pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Ops in the delta.
    pub ops_total: usize,
    /// Ops that touched articulation-relevant terms.
    pub ops_relevant: usize,
    /// Bridges removed by repairs.
    pub bridges_removed: usize,
    /// Rules dropped because their terms disappeared.
    pub rules_dropped: usize,
    /// New rules accepted during scoped re-proposal.
    pub rules_added: usize,
}

/// Partitions `ops` into (relevant, irrelevant) w.r.t. the articulation.
///
/// An op is relevant iff any label it touches is a bridged term of
/// `source_name` — the §5.3 criterion: "If a change to a source
/// ontology … occurs in the difference of O1 with other ontologies, no
/// change needs to occur in any of the articulation ontologies."
pub fn triage<'o>(
    art: &Articulation,
    source_name: &str,
    ops: &'o [GraphOp],
) -> (Vec<&'o GraphOp>, Vec<&'o GraphOp>) {
    let bridged: HashSet<&str> = art.bridged_terms(source_name).into_iter().collect();
    ops.iter().partition(|op| op.touched_labels().iter().any(|l| bridged.contains(l)))
}

fn rule_mentions(rule: &ArticulationRule, ontology: &str, name: &str) -> bool {
    rule.terms().iter().any(|t| t.in_ontology(ontology) && t.name == name)
}

/// Applies a source delta to the articulation.
///
/// * Irrelevant ops are skipped after triage (the cheap path).
/// * Relevant **deletions** remove bridges touching the deleted term and
///   drop rules mentioning it.
/// * Relevant **additions** (new edges under bridged classes) are
///   handled by `rearticulate`: when a pipeline and expert are given,
///   candidates mentioning the touched labels are proposed, reviewed and
///   applied through `generator.apply_rule`.
pub fn apply_delta(
    art: &mut Articulation,
    source_name: &str,
    ops: &[GraphOp],
    sources_after: &[&Ontology],
    generator: &ArticulationGenerator,
    mut rearticulate: Option<(&MatcherPipeline, &mut dyn Expert)>,
) -> Result<MaintenanceReport> {
    let mut report = MaintenanceReport { ops_total: ops.len(), ..Default::default() };
    let (relevant, _irrelevant) = triage(art, source_name, ops);
    report.ops_relevant = relevant.len();
    if relevant.is_empty() {
        return Ok(report);
    }

    // --- deletions: retract bridges and rules --------------------------
    let mut touched_labels: HashSet<String> = HashSet::new();
    for op in &relevant {
        match op {
            GraphOp::NodeDelete { label, .. } => {
                // 1. drop every rule mentioning the deleted term, and
                //    retract the bridges only those rules supported
                let dropped: Vec<String> = art
                    .rules
                    .rules
                    .iter()
                    .filter(|r| rule_mentions(r, source_name, label))
                    .map(|r| r.to_string())
                    .collect();
                art.rules.rules.retain(|r| !rule_mentions(r, source_name, label));
                for key in &dropped {
                    report.bridges_removed += art.drop_rule_support(key);
                    report.rules_dropped += 1;
                }
                // 2. bridges touching the term through other rules (e.g.
                //    a conjunction's common-subclass bridge) must go too
                report.bridges_removed += art.remove_bridges_touching(source_name, label);
            }
            GraphOp::EdgeDelete { edges } => {
                // Structural change under bridged terms: inherited
                // articulation structure may be stale. Record labels for
                // scoped re-articulation; bridges themselves key on terms,
                // not edges, so nothing is retracted here.
                for (s, _, d) in edges {
                    touched_labels.insert(s.clone());
                    touched_labels.insert(d.clone());
                }
            }
            GraphOp::NodeAdd { label, out_edges, in_edges } => {
                touched_labels.insert(label.clone());
                touched_labels.extend(out_edges.iter().map(|(_, d)| d.clone()));
                touched_labels.extend(in_edges.iter().map(|(s, _)| s.clone()));
            }
            GraphOp::EdgeAdd { edges } => {
                for (s, _, d) in edges {
                    touched_labels.insert(s.clone());
                    touched_labels.insert(d.clone());
                }
            }
        }
    }

    // --- additions: scoped re-proposal ---------------------------------
    //
    // The changed source must be re-proposed against *every* other
    // source: a >2-source composition (examples/multi_source_compose.rs)
    // can gain a correspondence between the changed source and any of
    // its peers, not just between the first two in `sources_after`.
    if let Some((pipeline, expert)) = rearticulate.as_mut() {
        if !touched_labels.is_empty() {
            let changed = sources_after.iter().copied().find(|o| o.name() == source_name);
            let others = sources_after.iter().copied().filter(|o| o.name() != source_name);
            if let Some(changed) = changed {
                for other in others {
                    let candidates = pipeline.propose(changed, other, &art.rules);
                    for cand in candidates {
                        let touches = cand.rule.terms().iter().any(|t| {
                            t.in_ontology(source_name) && touched_labels.contains(&t.name)
                        });
                        if !touches {
                            continue;
                        }
                        let accepted = match expert.review(&cand) {
                            Verdict::Accept => Some(cand.rule.clone()),
                            Verdict::Modify(rule) => Some(rule),
                            Verdict::Reject => None,
                        };
                        if let Some(rule) = accepted {
                            // RuleSet::push dedups, so a candidate seen
                            // against several peers is applied once
                            if art.rules.push(rule.clone()) {
                                generator.apply_rule(&rule, sources_after, art)?;
                                report.rules_added += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Full rebuild from retained rules — the expensive fallback an
/// implementation without triage would run on every update (and what the
/// global-merge baseline must do). Used by benches for the contrast.
pub fn rebuild(
    art: &Articulation,
    sources_after: &[&Ontology],
    generator: &ArticulationGenerator,
) -> Result<Articulation> {
    let rules: RuleSet = art.rules.clone();
    generator.generate(&rules, sources_after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::AcceptAll;
    use crate::skat::ExactLabelMatcher;
    use onion_ontology::examples::{carrier, factory};
    use onion_rules::parse_rules;

    fn articulated() -> (Ontology, Ontology, Articulation, ArticulationGenerator) {
        let c = carrier();
        let f = factory();
        let generator = ArticulationGenerator::new();
        let art = generator.generate(&onion_ontology::examples::fig2_rules(), &[&c, &f]).unwrap();
        (c, f, art, generator)
    }

    #[test]
    fn triage_separates_relevant_ops() {
        let (_, _, art, _) = articulated();
        let ops = vec![
            GraphOp::node_add("CompletelyNewThing"),
            GraphOp::edge_add("Cars", "SubclassOf", "Transportation"), // bridged terms
            GraphOp::node_delete("UnrelatedTerm"),
        ];
        let (relevant, irrelevant) = triage(&art, "carrier", &ops);
        assert_eq!(relevant.len(), 1);
        assert_eq!(irrelevant.len(), 2);
    }

    #[test]
    fn irrelevant_delta_is_a_noop() {
        let (mut c, f, mut art, generator) = articulated();
        // grow carrier somewhere unbridged
        c.graph_mut().enable_journal();
        c.subclass("Bicycles", "UnbridgedStuff").unwrap();
        let ops = c.graph_mut().take_journal();
        let before = art.bridges.clone();
        let report = apply_delta(&mut art, "carrier", &ops, &[&c, &f], &generator, None).unwrap();
        assert_eq!(report.ops_relevant, 0);
        assert_eq!(art.bridges, before);
    }

    #[test]
    fn deleting_bridged_term_retracts_bridges_and_rules() {
        let (mut c, f, mut art, generator) = articulated();
        let bridges_before = art.bridges.len();
        let rules_before = art.rules.len();
        assert!(art.is_relevant("carrier", "Trucks"));

        c.graph_mut().enable_journal();
        c.graph_mut().delete_node_by_label("Trucks").unwrap();
        let ops = c.graph_mut().take_journal();
        let report = apply_delta(&mut art, "carrier", &ops, &[&c, &f], &generator, None).unwrap();
        assert!(report.ops_relevant > 0);
        assert!(report.bridges_removed > 0);
        assert!(report.rules_dropped > 0);
        assert!(!art.is_relevant("carrier", "Trucks"));
        assert!(art.bridges.len() < bridges_before);
        assert!(art.rules.len() < rules_before);
        // the repaired articulation still materialises
        assert!(art.unified(&[&c, &f]).is_ok());
    }

    #[test]
    fn addition_near_bridge_triggers_scoped_rearticulation() {
        let (mut c, mut f, mut art, generator) = articulated();
        // both sources gain an identically-labeled term under bridged roots
        c.graph_mut().enable_journal();
        c.subclass("Motorcycle", "Transportation").unwrap();
        let ops_c = c.graph_mut().take_journal();
        f.subclass("Motorcycle", "Vehicle").unwrap();

        let pipeline = MatcherPipeline::new().with(ExactLabelMatcher);
        let mut expert = AcceptAll;
        let report = apply_delta(
            &mut art,
            "carrier",
            &ops_c,
            &[&c, &f],
            &generator,
            Some((&pipeline, &mut expert)),
        )
        .unwrap();
        assert!(report.ops_relevant > 0, "edge to bridged Transportation");
        assert_eq!(report.rules_added, 1);
        assert!(art.is_relevant("carrier", "Motorcycle"));
    }

    #[test]
    fn rearticulation_pairs_changed_source_with_every_other_source() {
        // regression: apply_delta used to re-propose only
        // sources_after[0] against sources_after[1], so in a >2-source
        // composition a change matching a term of the THIRD source was
        // silently ignored
        use onion_ontology::OntologyBuilder;
        let mut a = OntologyBuilder::new("a").class_under("Car", "Root").build().unwrap();
        let b = OntologyBuilder::new("b").class_under("Auto", "Root").build().unwrap();
        let c = OntologyBuilder::new("c").class_under("Lorry", "Root").build().unwrap();
        let rules = parse_rules("a.Car => b.Auto\n").unwrap();
        let generator = ArticulationGenerator::new();
        let mut art = generator.generate(&rules, &[&a, &b, &c]).unwrap();

        // `a` gains Lorry under the bridged Car — a relevant addition
        // whose only exact-label match lives in `c`
        a.graph_mut().enable_journal();
        a.subclass("Lorry", "Car").unwrap();
        let ops = a.graph_mut().take_journal();

        let pipeline = MatcherPipeline::new().with(ExactLabelMatcher);
        let mut expert = AcceptAll;
        let report = apply_delta(
            &mut art,
            "a",
            &ops,
            &[&a, &b, &c],
            &generator,
            Some((&pipeline, &mut expert)),
        )
        .unwrap();
        assert!(report.ops_relevant > 0, "edge to bridged Car is relevant");
        assert_eq!(report.rules_added, 1, "a.Lorry => c.Lorry found against the third source");
        assert!(art.is_relevant("a", "Lorry"));
        assert!(art.is_relevant("c", "Lorry"));
    }

    #[test]
    fn rearticulation_dedups_rules_seen_against_several_peers() {
        // the same candidate proposed against two peers is applied once
        use onion_ontology::OntologyBuilder;
        let mut a = OntologyBuilder::new("a").class_under("Car", "Root").build().unwrap();
        let b = OntologyBuilder::new("b").class_under("Van", "Root").build().unwrap();
        let c = OntologyBuilder::new("c").class_under("Van", "Root").build().unwrap();
        let rules = parse_rules("a.Car => b.Van\na.Car => c.Van\n").unwrap();
        let generator = ArticulationGenerator::new();
        let mut art = generator.generate(&rules, &[&a, &b, &c]).unwrap();

        a.graph_mut().enable_journal();
        a.subclass("Van", "Car").unwrap(); // matches Van in BOTH b and c
        let ops = a.graph_mut().take_journal();

        let pipeline = MatcherPipeline::new().with(ExactLabelMatcher);
        let mut expert = AcceptAll;
        let report = apply_delta(
            &mut art,
            "a",
            &ops,
            &[&a, &b, &c],
            &generator,
            Some((&pipeline, &mut expert)),
        )
        .unwrap();
        // one rule per distinct peer term (a.Van => b.Van, a.Van => c.Van),
        // each applied exactly once
        assert_eq!(report.rules_added, 2);
        let texts: Vec<String> = art.rules.rules.iter().map(|r| r.to_string()).collect();
        let dups = texts.iter().filter(|t| t.contains("a.Van")).count();
        assert_eq!(dups, 2, "{texts:?}");
    }

    #[test]
    fn rebuild_matches_fresh_generation() {
        let (mut c, f, art, generator) = articulated();
        c.subclass("Vans", "Transportation").unwrap();
        let rebuilt = rebuild(&art, &[&c, &f], &generator).unwrap();
        let fresh = generator.generate(&onion_ontology::examples::fig2_rules(), &[&c, &f]).unwrap();
        assert_eq!(rebuilt.bridges, fresh.bridges);
    }

    #[test]
    fn maintenance_report_counts_total_ops() {
        let (c, f, mut art, generator) = articulated();
        let ops = vec![GraphOp::node_add("X"), GraphOp::node_add("Y")];
        let report = apply_delta(&mut art, "carrier", &ops, &[&c, &f], &generator, None).unwrap();
        assert_eq!(report.ops_total, 2);
        let rules_parse_ok = parse_rules("a.X => b.Y").is_ok();
        assert!(rules_parse_ok); // keep parse_rules import exercised
    }
}
