//! Articulation persistence.
//!
//! "The source ontologies are independently maintained and the
//! articulation is the only thing that is physically stored." (§2) This
//! module provides that physical form: a line-oriented text format
//! holding the articulation ontology, the semantic bridges (with kind),
//! and the confirmed rule set. The unified ontology is *never* stored —
//! it is recomputed from sources + articulation on demand.
//!
//! ```text
//! articulation transport
//! # --- articulation ontology (graph text format, indented) ---
//! node Vehicle
//! edge Vehicle SubclassOf Transportation
//! # --- bridges ---
//! bridge rule carrier.Cars SIBridge transport.Vehicle
//! bridge functional carrier.DutchGuilders DGToEuroFn transport.Euro
//! # --- rules ---
//! rule carrier.Cars => factory.Vehicle
//! ```

use onion_graph::GraphError;
use onion_rules::{parser, Term};

use crate::articulation::{Articulation, Bridge, BridgeKind};
use crate::{ArticulateError, Result};

fn kind_str(k: BridgeKind) -> &'static str {
    match k {
        BridgeKind::Rule => "rule",
        BridgeKind::Equivalence => "equivalence",
        BridgeKind::Derived => "derived",
        BridgeKind::Functional => "functional",
    }
}

fn parse_kind(s: &str) -> Option<BridgeKind> {
    match s {
        "rule" => Some(BridgeKind::Rule),
        "equivalence" => Some(BridgeKind::Equivalence),
        "derived" => Some(BridgeKind::Derived),
        "functional" => Some(BridgeKind::Functional),
        _ => None,
    }
}

fn quote(s: &str) -> String {
    if !s.is_empty() && s.chars().all(|c| !c.is_whitespace() && c != '"' && c != '#') {
        s.to_string()
    } else {
        format!("{s:?}")
    }
}

/// Serialises an articulation to the text format.
pub fn to_text(art: &Articulation) -> String {
    let mut out = format!("articulation {}\n", quote(art.name()));
    out.push_str("# --- articulation ontology ---\n");
    let g = art.ontology.graph();
    for n in g.nodes() {
        out.push_str(&format!("node {}\n", quote(n.label)));
    }
    for e in g.edges() {
        out.push_str(&format!(
            "edge {} {} {}\n",
            quote(g.node_label(e.src).expect("live")),
            quote(e.label),
            quote(g.node_label(e.dst).expect("live")),
        ));
    }
    out.push_str("# --- bridges ---\n");
    for b in &art.bridges {
        out.push_str(&format!(
            "bridge {} {} {} {}\n",
            kind_str(b.kind),
            quote(&b.src.to_string()),
            quote(&b.label),
            quote(&b.dst.to_string()),
        ));
    }
    out.push_str("# --- rules ---\n");
    for r in art.rules.iter() {
        out.push_str(&format!("rule {r}\n"));
    }
    out
}

fn parse_err(line: usize, msg: impl Into<String>) -> ArticulateError {
    ArticulateError::Graph(GraphError::Parse { line, msg: msg.into() })
}

fn split_quoted(line: &str) -> Vec<String> {
    // reuse a simple tokenizer: whitespace-separated, double quotes group
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut t = String::new();
            for ch in chars.by_ref() {
                if ch == '"' {
                    break;
                }
                t.push(ch);
            }
            toks.push(t);
        } else {
            let mut t = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() {
                    break;
                }
                t.push(ch);
                chars.next();
            }
            toks.push(t);
        }
    }
    toks
}

fn parse_qualified(s: &str, line: usize) -> Result<Term> {
    match s.split_once('.') {
        Some((o, n)) if !o.is_empty() && !n.is_empty() => Ok(Term::qualified(o, n)),
        _ => Err(parse_err(line, format!("bridge endpoint {s:?} must be qualified onto.Term"))),
    }
}

/// Parses the text format back into an articulation.
///
/// Restored bridges carry their persisted kinds; rule-support provenance
/// is reconstructed conservatively by re-associating every persisted
/// rule with the bridges it would generate on replay (callers that need
/// exact provenance should regenerate from rules instead).
pub fn from_text(input: &str) -> Result<Articulation> {
    let mut art: Option<Articulation> = None;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks = split_quoted(line);
        let lineno = lineno + 1;
        match toks.first().map(String::as_str) {
            Some("articulation") => {
                if art.is_some() {
                    return Err(parse_err(lineno, "duplicate articulation header"));
                }
                if toks.len() != 2 {
                    return Err(parse_err(lineno, "articulation expects a name"));
                }
                art = Some(Articulation::new(&toks[1]));
            }
            Some("node") => {
                let art = art.as_mut().ok_or_else(|| parse_err(lineno, "missing header"))?;
                if toks.len() != 2 {
                    return Err(parse_err(lineno, "node expects one label"));
                }
                art.ontology.graph_mut().ensure_node(&toks[1])?;
            }
            Some("edge") => {
                let art = art.as_mut().ok_or_else(|| parse_err(lineno, "missing header"))?;
                if toks.len() != 4 {
                    return Err(parse_err(lineno, "edge expects SRC LABEL DST"));
                }
                art.ontology.graph_mut().ensure_edge_by_labels(&toks[1], &toks[2], &toks[3])?;
            }
            Some("bridge") => {
                let art = art.as_mut().ok_or_else(|| parse_err(lineno, "missing header"))?;
                if toks.len() != 5 {
                    return Err(parse_err(lineno, "bridge expects KIND SRC LABEL DST"));
                }
                let kind = parse_kind(&toks[1]).ok_or_else(|| {
                    parse_err(lineno, format!("unknown bridge kind {:?}", toks[1]))
                })?;
                let src = parse_qualified(&toks[2], lineno)?;
                let dst = parse_qualified(&toks[4], lineno)?;
                art.add_bridge(Bridge { src, label: toks[3].clone(), dst, kind });
            }
            Some("rule") => {
                let art = art.as_mut().ok_or_else(|| parse_err(lineno, "missing header"))?;
                let text = line.strip_prefix("rule ").expect("matched above");
                let rule =
                    parser::parse_rule(text).map_err(|e| parse_err(lineno, e.to_string()))?;
                art.rules.push(rule);
            }
            Some(other) => return Err(parse_err(lineno, format!("unknown directive {other:?}"))),
            None => unreachable!("blank lines filtered"),
        }
    }
    art.ok_or_else(|| parse_err(0, "empty articulation file"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ArticulationGenerator;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    fn fig2_art() -> Articulation {
        let c = carrier();
        let f = factory();
        ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap()
    }

    #[test]
    fn roundtrip_fig2() {
        let art = fig2_art();
        let text = to_text(&art);
        let back = from_text(&text).unwrap();
        assert_eq!(back.name(), art.name());
        assert!(back.ontology.graph().same_shape(art.ontology.graph()));
        assert_eq!(back.bridges, art.bridges);
        assert_eq!(back.rules, art.rules);
    }

    #[test]
    fn restored_articulation_still_unifies() {
        let c = carrier();
        let f = factory();
        let art = fig2_art();
        let back = from_text(&to_text(&art)).unwrap();
        let u1 = art.unified(&[&c, &f]).unwrap();
        let u2 = back.unified(&[&c, &f]).unwrap();
        assert!(u1.same_shape(&u2));
    }

    #[test]
    fn bridge_kinds_preserved() {
        let art = fig2_art();
        let back = from_text(&to_text(&art)).unwrap();
        for kind in [BridgeKind::Rule, BridgeKind::Equivalence, BridgeKind::Functional] {
            let orig = art.bridges.iter().filter(|b| b.kind == kind).count();
            let got = back.bridges.iter().filter(|b| b.kind == kind).count();
            assert_eq!(orig, got, "{kind:?} count");
        }
    }

    #[test]
    fn quoted_labels_roundtrip() {
        let mut art = Articulation::new("my art");
        art.ontology.graph_mut().ensure_node("Cargo Carrier").unwrap();
        art.add_bridge(Bridge::si(
            Term::qualified("left side", "A Term"),
            Term::qualified("my art", "Cargo Carrier"),
            BridgeKind::Rule,
        ));
        let back = from_text(&to_text(&art)).unwrap();
        assert_eq!(back.name(), "my art");
        assert_eq!(back.bridges, art.bridges);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "node X\n",                                     // before header
            "articulation a\narticulation b\n",             // duplicate
            "articulation a\nbridge rule x SIBridge b.Y\n", // wrong arity
            "articulation a\nbridge magic a.X S b.Y\n",     // bad kind
            "articulation a\nbridge rule unqualified S b.Y\n",
            "articulation a\nrule not a rule\n",
            "articulation a\nwhatever\n",
        ] {
            assert!(from_text(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_articulation_roundtrips() {
        let art = Articulation::new("t");
        let back = from_text(&to_text(&art)).unwrap();
        assert_eq!(back.name(), "t");
        assert!(back.bridges.is_empty());
        assert!(back.rules.is_empty());
    }
}
