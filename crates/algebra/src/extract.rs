//! The `extract` unary operator — the algebra's *project* (§5).
//!
//! Where [`crate::filter()`] keeps only what the pattern itself touches,
//! `extract` carves out the whole region of the ontology anchored at the
//! pattern's matches: the matched nodes plus everything reachable from
//! them along the selected edge labels, with those edges. This is the
//! "carve out portions of an ontology, required by the articulation,
//! using graph patterns" of §4.

use onion_graph::traverse::{reachable_from_all, Direction, EdgeFilter};
use onion_graph::{MatchConfig, Matcher, NodeId, OntGraph, Pattern};
use onion_ontology::Ontology;

use crate::Result;

/// Extracts the subgraph reachable from the matches of `pattern`.
///
/// `direction` controls which way reachability flows (e.g.
/// [`Direction::Backward`] along `SubclassOf` collects the whole subtree
/// *under* a class, since subclass edges point child → parent);
/// `edge_filter` restricts which edges are followed and copied.
pub fn extract(
    ontology: &Ontology,
    pattern: &Pattern,
    config: &MatchConfig,
    direction: Direction,
    edge_filter: &EdgeFilter,
) -> Result<OntGraph> {
    let g = ontology.graph();
    let matcher = Matcher::new(g).with_config(config.clone());
    let matches = matcher.find_all(pattern)?;
    let seeds: Vec<NodeId> = {
        let mut v: Vec<NodeId> = matches.iter().flat_map(|m| m.nodes.iter().copied()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let region = reachable_from_all(g, &seeds, direction, edge_filter);
    let mut out = OntGraph::new(format!("extract({})", g.name()));
    for &n in &region {
        out.ensure_node(g.node_label(n).expect("live"))?;
    }
    // resolved filter: per-edge admission by interned id, no strings
    let rf = edge_filter.resolve(g);
    for (_, src, lid, dst) in g.edge_entries() {
        if region.contains(&src) && region.contains(&dst) && rf.admits(lid) {
            out.ensure_edge_by_labels(
                g.node_label(src).expect("live"),
                g.resolve(lid),
                g.node_label(dst).expect("live"),
            )?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_graph::rel;
    use onion_ontology::examples::carrier;

    fn seed_pattern(label: &str) -> Pattern {
        let mut p = Pattern::new();
        p.node(label);
        p
    }

    #[test]
    fn extract_subtree_under_class() {
        let c = carrier();
        let out = extract(
            &c,
            &seed_pattern("Cars"),
            &MatchConfig::default(),
            Direction::Backward,
            &EdgeFilter::label(rel::SUBCLASS_OF),
        )
        .unwrap();
        // Cars and its subclass SUV; not Trucks, not attributes
        assert!(out.contains_label("Cars"));
        assert!(out.contains_label("SUV"));
        assert!(!out.contains_label("Trucks"));
        assert!(!out.contains_label("Price"));
        assert!(out.has_edge("SUV", rel::SUBCLASS_OF, "Cars"));
        assert_eq!(out.name(), "extract(carrier)");
    }

    #[test]
    fn extract_upward_collects_ancestors() {
        let c = carrier();
        let out = extract(
            &c,
            &seed_pattern("SUV"),
            &MatchConfig::default(),
            Direction::Forward,
            &EdgeFilter::label(rel::SUBCLASS_OF),
        )
        .unwrap();
        assert!(out.contains_label("SUV"));
        assert!(out.contains_label("Cars"));
        assert!(out.contains_label("Transportation"));
        assert!(!out.contains_label("Trucks"));
    }

    #[test]
    fn extract_both_directions_all_edges() {
        let c = carrier();
        let out = extract(
            &c,
            &seed_pattern("Cars"),
            &MatchConfig::default(),
            Direction::Both,
            &EdgeFilter::All,
        )
        .unwrap();
        // everything connected to Cars (the carrier graph is connected)
        assert!(out.contains_label("Price"));
        assert!(out.contains_label("Driver"));
        assert!(out.contains_label("Trucks"), "via shared Transportation/attributes");
    }

    #[test]
    fn extract_no_match_is_empty() {
        let c = carrier();
        let out = extract(
            &c,
            &seed_pattern("Ghost"),
            &MatchConfig::default(),
            Direction::Both,
            &EdgeFilter::All,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn extract_edge_filter_drops_other_edge_kinds() {
        let c = carrier();
        let out = extract(
            &c,
            &seed_pattern("Cars"),
            &MatchConfig::default(),
            Direction::Backward,
            &EdgeFilter::Labels(vec![rel::SUBCLASS_OF.into(), rel::INSTANCE_OF.into()]),
        )
        .unwrap();
        assert!(out.contains_label("MyCar"), "instances collected");
        // attribute edges not followed or copied
        assert!(!out.contains_label("Price"));
        assert!(out.edges().all(|e| e.label != rel::ATTRIBUTE_OF));
    }
}
