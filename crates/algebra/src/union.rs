//! The `Union` binary operator (§5.1).
//!
//! "The union operator takes two ontology graphs, a set of articulation
//! rules and generates a unified ontology graph where the resulting
//! unified ontology comprises of the two original ontology graphs
//! connected by the articulation. … `O1 ∪ᵣᵤₗₑₛ O2 = OU` … such that
//! `N = N1 ∪ N2 ∪ NA` and `E = E1 ∪ E2 ∪ EA ∪ BridgeEdges`."
//!
//! Like the paper's union, the result is computed dynamically from the
//! sources and the (stored) articulation; nodes are qualified
//! `source.Term` so the same local term in two sources stays distinct.

use onion_articulate::{Articulation, ArticulationGenerator};
use onion_graph::OntGraph;
use onion_ontology::Ontology;
use onion_rules::RuleSet;

use crate::Result;

/// The result of a union: the unified graph plus the articulation that
/// connects it (kept so queries can reformulate through the bridges).
#[derive(Debug, Clone)]
pub struct UnionResult {
    /// `N1 ∪ N2 ∪ NA` with `E1 ∪ E2 ∪ EA ∪ BridgeEdges`, qualified labels.
    pub graph: OntGraph,
    /// The articulation used.
    pub articulation: Articulation,
}

/// Computes `o1 ∪_rules o2` by generating the articulation from `rules`
/// and materialising the unified graph.
///
/// ```
/// use onion_algebra::union;
/// use onion_articulate::ArticulationGenerator;
/// use onion_ontology::examples;
///
/// let carrier = examples::carrier();
/// let factory = examples::factory();
/// let u = union(&carrier, &factory, &examples::fig2_rules(), &ArticulationGenerator::new())
///     .unwrap();
/// assert!(u.graph.contains_label("carrier.Cars"));
/// assert!(u.graph.contains_label("transport.Vehicle"));
/// assert!(u.graph.has_edge("carrier.Cars", "SIBridge", "transport.Vehicle"));
/// ```
pub fn union(
    o1: &Ontology,
    o2: &Ontology,
    rules: &RuleSet,
    generator: &ArticulationGenerator,
) -> Result<UnionResult> {
    let articulation = generator.generate(rules, &[o1, o2])?;
    let graph = articulation.unified(&[o1, o2])?;
    Ok(UnionResult { graph, articulation })
}

/// Union with a pre-computed articulation (skips regeneration; the form
/// used when the stored articulation is reused across queries, §5.1).
pub fn union_with(
    o1: &Ontology,
    o2: &Ontology,
    articulation: &Articulation,
) -> Result<UnionResult> {
    let graph = articulation.unified(&[o1, o2])?;
    Ok(UnionResult { graph, articulation: articulation.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_graph::rel;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    #[test]
    fn union_contains_both_sources_and_articulation() {
        let c = carrier();
        let f = factory();
        let u = union(&c, &f, &fig2_rules(), &ArticulationGenerator::new()).unwrap();
        // N = N1 ∪ N2 ∪ NA
        let n_sources = c.term_count() + f.term_count();
        let n_art = u.articulation.ontology.term_count();
        assert_eq!(u.graph.node_count(), n_sources + n_art);
        // the three namespaces coexist
        assert!(u.graph.contains_label("carrier.Cars"));
        assert!(u.graph.contains_label("factory.Vehicle"));
        assert!(u.graph.contains_label("transport.Vehicle"));
        // E contains source edges and bridges
        assert!(u.graph.has_edge("carrier.SUV", rel::SUBCLASS_OF, "carrier.Cars"));
        assert!(u.graph.has_edge("carrier.Cars", rel::SI_BRIDGE, "transport.Vehicle"));
    }

    #[test]
    fn union_edge_count_is_sum_of_parts() {
        let c = carrier();
        let f = factory();
        let u = union(&c, &f, &fig2_rules(), &ArticulationGenerator::new()).unwrap();
        let expected = c.graph().edge_count()
            + f.graph().edge_count()
            + u.articulation.ontology.graph().edge_count()
            + u.articulation.bridges.len();
        assert_eq!(u.graph.edge_count(), expected);
    }

    #[test]
    fn union_is_dynamic_sources_untouched() {
        let c = carrier();
        let f = factory();
        let before_c = c.graph().edge_count();
        let before_f = f.graph().edge_count();
        let _ = union(&c, &f, &fig2_rules(), &ArticulationGenerator::new()).unwrap();
        assert_eq!(c.graph().edge_count(), before_c);
        assert_eq!(f.graph().edge_count(), before_f);
    }

    #[test]
    fn union_with_reuses_articulation() {
        let c = carrier();
        let f = factory();
        let gen = ArticulationGenerator::new();
        let art = gen.generate(&fig2_rules(), &[&c, &f]).unwrap();
        let u1 = union_with(&c, &f, &art).unwrap();
        let u2 = union(&c, &f, &fig2_rules(), &gen).unwrap();
        assert!(u1.graph.same_shape(&u2.graph));
    }

    #[test]
    fn empty_rules_union_is_disjoint_juxtaposition() {
        let c = carrier();
        let f = factory();
        let u = union(&c, &f, &RuleSet::new(), &ArticulationGenerator::new()).unwrap();
        assert_eq!(u.graph.node_count(), c.term_count() + f.term_count());
        assert_eq!(u.graph.edge_count(), c.graph().edge_count() + f.graph().edge_count());
        assert!(u.articulation.bridges.is_empty());
    }
}
