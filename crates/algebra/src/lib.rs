//! # onion-algebra
//!
//! The ontology algebra of the paper's §5 — "the machinery to support
//! the composition of ontologies via the articulation".
//!
//! * Unary operators [`filter()`] and [`extract()`] "work on a single
//!   ontology … analogous to the select and project operations in
//!   relational algebra": given a graph pattern they return selected
//!   portions of the ontology graph.
//! * Binary [`union()`]: the two source graphs connected by the
//!   articulation — `OU = (N1 ∪ N2 ∪ NA, E1 ∪ E2 ∪ EA ∪ BridgeEdges)`
//!   (§5.1), computed dynamically, never stored.
//! * Binary [`intersect()`]: the articulation ontology itself — "the
//!   portions of knowledge bases that deal with similar concepts"
//!   (§5.2); the composable unit that makes articulation scale.
//! * Binary [`difference()`]: "the terms and relationships of the first
//!   ontology that have not been determined to exist in the second"
//!   (§5.3), with the paper's conservative path semantics; the basis for
//!   independent source evolution.
//! * [`compose`]: n-way composition by re-articulating an articulation
//!   with further sources (§4.2: "the articulation ontology of two
//!   ontologies can be composed with another source ontology … with
//!   minimal effort").
//! * [`laws`]: executable algebraic sanity properties used by the test
//!   suite and the B5 bench.

pub mod compose;
pub mod difference;
pub mod extract;
pub mod filter;
pub mod intersect;
pub mod laws;
pub mod union;

pub use compose::{compose_all, Composition};
pub use difference::{difference, DifferenceReport};
pub use extract::extract;
pub use filter::filter;
pub use intersect::intersect;
pub use union::{union, UnionResult};

/// Errors from algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// Underlying graph failure.
    Graph(onion_graph::GraphError),
    /// Underlying articulation failure.
    Articulate(onion_articulate::ArticulateError),
}

impl std::fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgebraError::Graph(e) => write!(f, "graph error: {e}"),
            AlgebraError::Articulate(e) => write!(f, "articulation error: {e}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<onion_graph::GraphError> for AlgebraError {
    fn from(e: onion_graph::GraphError) -> Self {
        AlgebraError::Graph(e)
    }
}

impl From<onion_articulate::ArticulateError> for AlgebraError {
    fn from(e: onion_articulate::ArticulateError) -> Self {
        AlgebraError::Articulate(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
