//! The `Difference` binary operator (§5.3).
//!
//! "The Difference of two ontologies (O1 − O2) is defined as the terms
//! and relationships of the first ontology that have not been determined
//! to exist in the second. This operation allows a local ontology
//! maintainer to determine the extent of one's ontology that remains
//! independent of the articulation with other domain ontologies."
//!
//! Formal condition (§5.3): `n ∈ N` only if `n ∈ N1`, `n ∉ N2`
//! (semantically, via the articulation), **and** there is no path from
//! `n` to any `n′ ∈ N2`. The worked example adds the conservative
//! garbage-collection step: after removing the determined node (`Car`),
//! also remove "all nodes that can be reached by a path from Car, but
//! not by a path from any other node".
//!
//! **Directionality.** The bridges encode *directed subset*
//! relationships (§4.1: `P ⇒ Q` is "a directed subset relationship").
//! `carrier.Car ⇒ factory.Vehicle` determines `Car` to exist in
//! `factory` (every car is a vehicle there), but does **not** determine
//! `Vehicle` to exist in `carrier`: "there is no way to distinguish the
//! cars from the other vehicles … the articulation generator takes the
//! more conservative option of retaining all vehicles". A term of `O1`
//! is therefore *determined* exactly when a **directed** semantic-
//! implication path leads from it into `O2`.

use std::collections::{HashMap, HashSet, VecDeque};

use onion_articulate::Articulation;
use onion_graph::hash::{FxHashMap, FxHashSet};
use onion_graph::rel;
use onion_graph::traverse::{reachable_from_all, Direction, EdgeFilter};
use onion_graph::{NodeId, OntGraph};
use onion_ontology::Ontology;

use crate::Result;

/// What the difference removed and why — returned alongside the graph
/// so maintainers can see their ontology's independent extent (§5.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DifferenceReport {
    /// Terms determined (via the articulation) to exist in the other
    /// ontology.
    pub determined: Vec<String>,
    /// Terms removed because a semantic path leads from them to a
    /// determined term (formal condition 2).
    pub reaches_determined: Vec<String>,
    /// Terms removed as orphans of the removal (the prose GC step).
    pub orphaned: Vec<String>,
}

impl DifferenceReport {
    /// Total removed terms.
    pub fn removed(&self) -> usize {
        self.determined.len() + self.reaches_determined.len() + self.orphaned.len()
    }
}

/// Interned qualified-term key: `(namespace index, label id)` — the
/// same `(onto-idx, label-id)` scheme as `onion_query::reformulate`.
/// The implication walk used to be keyed by `format!("onto.Term")`
/// strings, paying an allocation plus a string hash per edge; keys are
/// now built once and every BFS step is id hashing only. Terms that
/// appear only in bridge text (never as a node of their namespace's
/// graph) get overflow ids above the interner range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TermKey {
    onto: u16,
    label: u32,
}

/// Namespace registry backing [`TermKey`]s for one difference run.
struct TermSpace<'a> {
    names: Vec<String>,
    graphs: Vec<Option<&'a OntGraph>>,
    overflow: Vec<HashMap<String, u32>>,
}

impl<'a> TermSpace<'a> {
    fn new() -> Self {
        TermSpace { names: Vec::new(), graphs: Vec::new(), overflow: Vec::new() }
    }

    /// Registers a namespace; the first registration of a name wins and
    /// provides the canonical graph. Unqualified terms use `""`.
    fn namespace(&mut self, name: &str, graph: Option<&'a OntGraph>) -> u16 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as u16;
        }
        self.names.push(name.to_string());
        self.graphs.push(graph);
        self.overflow.push(HashMap::new());
        (self.names.len() - 1) as u16
    }

    /// Build-time interning of a possibly graph-less term.
    fn intern(&mut self, onto: &str, term: &str) -> TermKey {
        let idx = self.namespace(onto, None);
        self.intern_in(idx, term)
    }

    fn intern_in(&mut self, idx: u16, term: &str) -> TermKey {
        if let Some(g) = self.graphs[idx as usize] {
            if let Some(lid) = g.label_id(term) {
                return TermKey { onto: idx, label: lid.index() as u32 };
            }
        }
        let base = self.graphs[idx as usize].map(|g| g.interner().len() as u32).unwrap_or(0);
        let ov = &mut self.overflow[idx as usize];
        let next = base + ov.len() as u32;
        let label = *ov.entry(term.to_string()).or_insert(next);
        TermKey { onto: idx, label }
    }
}

/// Terms of `of` with a **directed** implication path (through bridges
/// and articulation-internal `SubclassOf` edges) into `other`.
fn determined_terms(art: &Articulation, of: &Ontology, other: &Ontology) -> HashSet<String> {
    let art_g = art.ontology.graph();
    let mut space = TermSpace::new();
    let art_idx = space.namespace(art.name(), Some(art_g));
    let of_idx = space.namespace(of.name(), Some(of.graph()));
    let other_idx = space.namespace(other.name(), Some(other.graph()));
    // directed adjacency over interned term keys
    let mut adj: FxHashMap<TermKey, Vec<TermKey>> = FxHashMap::default();
    for b in &art.bridges {
        let s = space.intern(b.src.ontology.as_deref().unwrap_or(""), &b.src.name);
        let d = space.intern(b.dst.ontology.as_deref().unwrap_or(""), &b.dst.name);
        adj.entry(s).or_default().push(d);
    }
    // articulation-internal subclass edges imply, on label ids directly
    if let Some(sub) = art_g.label_id(rel::SUBCLASS_OF) {
        for (_, src, lid, dst) in art_g.edge_entries() {
            if lid == sub {
                let s = TermKey {
                    onto: art_idx,
                    label: art_g.node_label_id(src).expect("live").index() as u32,
                };
                let d = TermKey {
                    onto: art_idx,
                    label: art_g.node_label_id(dst).expect("live").index() as u32,
                };
                adj.entry(s).or_default().push(d);
            }
        }
    }
    let mut determined = HashSet::new();
    let mut seen: FxHashSet<TermKey> = FxHashSet::default();
    let mut q: VecDeque<TermKey> = VecDeque::new();
    for start in art.bridged_terms(of.name()) {
        let start_key = space.intern_in(of_idx, start);
        seen.clear();
        q.clear();
        if adj.contains_key(&start_key) {
            seen.insert(start_key);
            q.push_back(start_key);
        }
        'bfs: while let Some(cur) = q.pop_front() {
            if let Some(nexts) = adj.get(&cur) {
                for &n in nexts {
                    if n.onto == other_idx {
                        determined.insert(start.to_string());
                        break 'bfs;
                    }
                    if adj.contains_key(&n) && seen.insert(n) {
                        q.push_back(n);
                    }
                }
            }
        }
    }
    determined
}

/// Computes `o1 − o2` under `articulation`.
pub fn difference(
    o1: &Ontology,
    o2: &Ontology,
    articulation: &Articulation,
) -> Result<(OntGraph, DifferenceReport)> {
    let g = o1.graph();
    let determined = determined_terms(articulation, o1, o2);
    let det_nodes: Vec<NodeId> = determined.iter().filter_map(|l| g.node_by_label(l)).collect();

    // condition 2: anything with a directed semantic path *to* a
    // determined node is a specialisation of a shared concept — not
    // independent. Semantic edges only; attribute attachment stays local.
    let semantic = EdgeFilter::Labels(vec![
        rel::SUBCLASS_OF.into(),
        rel::INSTANCE_OF.into(),
        rel::SEMANTIC_IMPLICATION.into(),
    ]);
    let upstream = reachable_from_all(g, &det_nodes, Direction::Backward, &semantic);
    let mut removed: HashSet<NodeId> = det_nodes.iter().copied().collect();
    let mut reaches: Vec<String> = Vec::new();
    for n in upstream {
        if removed.insert(n) {
            reaches.push(g.node_label(n).expect("live").to_string());
        }
    }

    // prose GC: delete nodes reachable from the removed set whose every
    // in-edge comes from removed nodes (fixpoint).
    let mut orphaned: Vec<String> = Vec::new();
    let downstream = reachable_from_all(
        g,
        &removed.iter().copied().collect::<Vec<_>>(),
        Direction::Forward,
        &EdgeFilter::All,
    );
    loop {
        let mut grew = false;
        for &n in &downstream {
            if removed.contains(&n) {
                continue;
            }
            let mut has_in = false;
            let mut all_in_removed = true;
            // id-layer iteration: only the in-neighbour id is needed
            for (_, _, src) in g.in_edge_entries(n) {
                has_in = true;
                if !removed.contains(&src) {
                    all_in_removed = false;
                    break;
                }
            }
            if has_in && all_in_removed {
                removed.insert(n);
                orphaned.push(g.node_label(n).expect("live").to_string());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // build the surviving graph
    let mut out = OntGraph::new(format!("{} - {}", o1.name(), o2.name()));
    for n in g.nodes() {
        if !removed.contains(&n.id) {
            out.ensure_node(n.label)?;
        }
    }
    for e in g.edges() {
        if !removed.contains(&e.src) && !removed.contains(&e.dst) {
            out.ensure_edge_by_labels(
                g.node_label(e.src).expect("live"),
                e.label,
                g.node_label(e.dst).expect("live"),
            )?;
        }
    }
    let mut determined: Vec<String> = determined.into_iter().collect();
    determined.sort();
    reaches.sort();
    orphaned.sort();
    Ok((out, DifferenceReport { determined, reaches_determined: reaches, orphaned }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::ArticulationGenerator;
    use onion_ontology::OntologyBuilder;

    /// The §5.3 worked example: carrier has Car; factory has Vehicle;
    /// the only rule is carrier.Car => factory.Vehicle.
    fn paper_example() -> (Ontology, Ontology, Articulation) {
        let carrier = OntologyBuilder::new("carrier")
            .class_under("Car", "Transportation")
            .attr("CarStereo", "Car") // upstream of Car (edge points in)
            .class("Depot") // fully independent
            .build()
            .unwrap();
        let factory = OntologyBuilder::new("factory")
            .class_under("Vehicle", "Transportation")
            .class_under("Bus", "Vehicle")
            .build()
            .unwrap();
        let rules = onion_rules::parse_rules("carrier.Car => factory.Vehicle\n").unwrap();
        let art = ArticulationGenerator::new().generate(&rules, &[&carrier, &factory]).unwrap();
        (carrier, factory, art)
    }

    #[test]
    fn carrier_minus_factory_drops_car() {
        let (c, f, art) = paper_example();
        let (d, report) = difference(&c, &f, &art).unwrap();
        // "Since a Car is a Vehicle, carrier should not contain Car."
        assert!(!d.contains_label("Car"));
        assert_eq!(report.determined, vec!["Car"]);
        // "all nodes that can be reached by a path from Car, but not by a
        // path from any other node" go too: Transportation was only
        // reachable from Car
        assert!(!d.contains_label("Transportation"));
        assert_eq!(report.orphaned, vec!["Transportation"]);
        // upstream attribute and independent term survive
        assert!(d.contains_label("CarStereo"));
        assert!(d.contains_label("Depot"));
    }

    #[test]
    fn factory_minus_carrier_keeps_vehicle() {
        let (c, f, art) = paper_example();
        let (d, report) = difference(&f, &c, &art).unwrap();
        // "the node Vehicle is not deleted": the rule is a directed
        // subset (cars ⊆ vehicles); nothing determines factory vehicles
        // to exist in carrier
        assert!(d.contains_label("Vehicle"));
        assert!(d.contains_label("Bus"));
        assert!(d.contains_label("Transportation"));
        assert_eq!(report.removed(), 0);
        assert!(report.determined.is_empty());
    }

    #[test]
    fn equivalence_bridges_determine_both_ways() {
        // with an explicit two-way rule pair the concept is determined in
        // both differences
        let a = OntologyBuilder::new("a").class("Thing").build().unwrap();
        let b = OntologyBuilder::new("b").class("Item").build().unwrap();
        let rules = onion_rules::parse_rules("a.Thing => b.Item\nb.Item => a.Thing\n").unwrap();
        let art = ArticulationGenerator::new().generate(&rules, &[&a, &b]).unwrap();
        let (da, ra) = difference(&a, &b, &art).unwrap();
        let (db, rb) = difference(&b, &a, &art).unwrap();
        assert!(!da.contains_label("Thing"));
        assert!(!db.contains_label("Item"));
        assert_eq!(ra.determined, vec!["Thing"]);
        assert_eq!(rb.determined, vec!["Item"]);
    }

    #[test]
    fn difference_with_empty_articulation_is_identity() {
        let (c, _, _) = paper_example();
        let f2 = OntologyBuilder::new("elsewhere").class("X").build().unwrap();
        let empty = Articulation::new("art");
        let (d, report) = difference(&c, &f2, &empty).unwrap();
        assert!(d.same_shape(c.graph()));
        assert_eq!(report.removed(), 0);
    }

    #[test]
    fn subclasses_of_determined_terms_are_removed() {
        // SUV -S-> Car: SUV has a semantic path to the determined Car —
        // every SUV is semantically a factory vehicle too
        let carrier = OntologyBuilder::new("carrier")
            .class_under("Car", "Transportation")
            .class_under("SUV", "Car")
            .class_under("Boat", "Transportation") // sibling: survives
            .build()
            .unwrap();
        let factory = OntologyBuilder::new("factory").class("Vehicle").build().unwrap();
        let rules = onion_rules::parse_rules("carrier.Car => factory.Vehicle\n").unwrap();
        let art = ArticulationGenerator::new().generate(&rules, &[&carrier, &factory]).unwrap();
        let (d, report) = difference(&carrier, &factory, &art).unwrap();
        assert!(!d.contains_label("SUV"));
        assert!(report.reaches_determined.contains(&"SUV".to_string()));
        assert!(d.contains_label("Boat"));
        assert!(d.contains_label("Transportation"), "Transportation reachable from surviving Boat");
    }

    #[test]
    fn attributes_of_shared_classes_survive() {
        let carrier =
            OntologyBuilder::new("carrier").class("Car").attr("Price", "Car").build().unwrap();
        let factory = OntologyBuilder::new("factory").class("Vehicle").build().unwrap();
        let rules = onion_rules::parse_rules("carrier.Car => factory.Vehicle\n").unwrap();
        let art = ArticulationGenerator::new().generate(&rules, &[&carrier, &factory]).unwrap();
        let (d, _) = difference(&carrier, &factory, &art).unwrap();
        // Price points INTO Car (upstream); the local price modelling is
        // independent even though Car is shared
        assert!(d.contains_label("Price"));
        assert_eq!(d.edge_count(), 0, "its edge to the removed Car is gone");
    }

    #[test]
    fn report_counts_are_consistent() {
        let (c, f, art) = paper_example();
        let (d, report) = difference(&c, &f, &art).unwrap();
        assert_eq!(c.term_count() - d.node_count(), report.removed());
    }

    #[test]
    fn instance_of_shared_class_is_removed() {
        let carrier =
            OntologyBuilder::new("carrier").class("Car").instance("MyCar", "Car").build().unwrap();
        let factory = OntologyBuilder::new("factory").class("Vehicle").build().unwrap();
        let rules = onion_rules::parse_rules("carrier.Car => factory.Vehicle\n").unwrap();
        let art = ArticulationGenerator::new().generate(&rules, &[&carrier, &factory]).unwrap();
        let (d, report) = difference(&carrier, &factory, &art).unwrap();
        // MyCar InstanceOf Car: semantically a vehicle, not independent
        assert!(!d.contains_label("MyCar"));
        assert!(report.reaches_determined.contains(&"MyCar".to_string()));
    }
}
