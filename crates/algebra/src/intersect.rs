//! The `Intersection` binary operator (§5.2).
//!
//! "The Intersection operator takes two ontology graphs, a set of
//! articulation rules and produces the articulation ontology graph. …
//! the edges that are between nodes in the articulation ontology graph
//! and nodes in the source ontology graphs are not included … The
//! intersection, therefore, produces an ontology that can be further
//! composed with other ontologies. This operation is central to our
//! scalable articulation concepts."
//!
//! Intersection delegates wholesale to the articulation generator, so
//! its traversal cost (structure inheritance's per-label closure,
//! common-subclass lookups) rides on the graph's label-indexed
//! adjacency layer rather than doing any matching of its own.

use onion_articulate::ArticulationGenerator;
use onion_ontology::Ontology;
use onion_rules::RuleSet;

use crate::Result;

/// Computes `o1 ∩_rules o2`: the articulation ontology (only its
/// internal nodes and edges; bridges to the sources are excluded, making
/// the result a self-contained, composable ontology).
pub fn intersect(
    o1: &Ontology,
    o2: &Ontology,
    rules: &RuleSet,
    generator: &ArticulationGenerator,
) -> Result<Ontology> {
    let articulation = generator.generate(rules, &[o1, o2])?;
    Ok(articulation.ontology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    #[test]
    fn intersection_is_the_articulation_ontology() {
        let c = carrier();
        let f = factory();
        let gen = ArticulationGenerator::new();
        let i = intersect(&c, &f, &fig2_rules(), &gen).unwrap();
        assert_eq!(i.name(), "transport");
        // of the Fig. 2 example: "The intersection of the carrier and
        // factory ontologies is the transportation ontology."
        assert!(i.defines("Vehicle"));
        assert!(i.defines("CargoCarrier"));
        assert!(i.defines("Euro"));
    }

    #[test]
    fn intersection_excludes_source_terms() {
        let c = carrier();
        let f = factory();
        let i = intersect(&c, &f, &fig2_rules(), &ArticulationGenerator::new()).unwrap();
        // source-only terms do not leak in
        assert!(!i.defines("MyCar"));
        assert!(!i.defines("GoodsVehicle"));
        assert!(!i.defines("DutchGuilders"));
    }

    #[test]
    fn intersection_is_composable() {
        // the §5.2 point: the result is an ordinary ontology usable as a
        // source for a further articulation
        let c = carrier();
        let f = factory();
        let gen = ArticulationGenerator::new();
        let i = intersect(&c, &f, &fig2_rules(), &gen).unwrap();
        let third = onion_ontology::OntologyBuilder::new("retail")
            .class_under("Vehicle", "Inventory")
            .build()
            .unwrap();
        let rules = onion_rules::parse_rules("transport.Vehicle => retail.Vehicle\n").unwrap();
        let cfg =
            onion_articulate::GeneratorConfig { art_name: "art2".into(), ..Default::default() };
        let second = ArticulationGenerator::with_config(cfg).generate(&rules, &[&i, &third]);
        assert!(second.is_ok());
        assert!(second.unwrap().ontology.defines("Vehicle"));
    }

    #[test]
    fn empty_rules_intersection_is_empty() {
        let c = carrier();
        let f = factory();
        let i = intersect(&c, &f, &RuleSet::new(), &ArticulationGenerator::new()).unwrap();
        assert_eq!(i.term_count(), 0);
    }

    #[test]
    fn intersection_subset_of_union() {
        let c = carrier();
        let f = factory();
        let gen = ArticulationGenerator::new();
        let i = intersect(&c, &f, &fig2_rules(), &gen).unwrap();
        let u = crate::union::union(&c, &f, &fig2_rules(), &gen).unwrap();
        for n in i.graph().nodes() {
            let qualified = format!("{}.{}", i.name(), n.label);
            assert!(u.graph.contains_label(&qualified), "{qualified} missing from union");
        }
    }
}
