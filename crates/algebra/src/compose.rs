//! n-way composition by articulating articulations (§4.2).
//!
//! "The articulation ontology of two ontologies can be composed with
//! another source ontology to create a second articulation that spans
//! over all three source ontologies. This implies that with the addition
//! of new sources, we do not need to restructure existing ontologies or
//! articulations but can reuse them and create a new articulation with
//! minimal effort."
//!
//! [`compose_all`] folds a source list left to right: articulate the
//! first two, then articulate each further source against the previous
//! articulation ontology. Experiment B7 compares the cost of adding the
//! k-th source this way against re-merging everything globally.

use onion_articulate::{
    Articulation, ArticulationEngine, EngineConfig, EngineReport, Expert, GeneratorConfig,
    MatcherPipeline,
};
use onion_lexicon::Lexicon;
use onion_ontology::Ontology;
use onion_rules::RuleSet;

use crate::Result;

/// The ladder of articulations spanning all composed sources.
#[derive(Debug)]
pub struct Composition {
    /// Articulations, innermost first: `steps[0]` spans sources 0 and 1;
    /// `steps[i]` spans `steps[i-1]`'s ontology and source `i+1`.
    pub steps: Vec<Articulation>,
    /// Per-step engine reports.
    pub reports: Vec<EngineReport>,
}

impl Composition {
    /// The outermost articulation (spans every source).
    pub fn top(&self) -> &Articulation {
        self.steps.last().expect("composition has at least one step")
    }

    /// Number of composed sources.
    pub fn source_count(&self) -> usize {
        self.steps.len() + 1
    }
}

/// Articulates `sources` pairwise left to right with a fresh engine per
/// step (each step gets its own articulation namespace `artN`).
///
/// Requires at least two sources.
pub fn compose_all(
    sources: &[&Ontology],
    lexicon: &Lexicon,
    expert: &mut dyn Expert,
) -> Result<Composition> {
    assert!(sources.len() >= 2, "composition needs at least two sources");
    let mut steps: Vec<Articulation> = Vec::new();
    let mut reports = Vec::new();

    for source in sources.iter().skip(1) {
        let engine = step_engine(steps.len(), lexicon);
        let left_owned;
        let left: &Ontology = if let Some(prev) = steps.last() {
            left_owned = prev.ontology.clone();
            &left_owned
        } else {
            sources[0]
        };
        let (art, report) = engine.run(left, source, expert, RuleSet::new())?;
        steps.push(art);
        reports.push(report);
    }
    Ok(Composition { steps, reports })
}

/// Adds one more source to an existing composition (the incremental
/// path B7 measures): only a single new articulation step is built.
pub fn add_source(
    composition: &mut Composition,
    source: &Ontology,
    lexicon: &Lexicon,
    expert: &mut dyn Expert,
) -> Result<EngineReport> {
    let engine = step_engine(composition.steps.len(), lexicon);
    let left = composition.top().ontology.clone();
    let (art, report) = engine.run(&left, source, expert, RuleSet::new())?;
    composition.steps.push(art);
    composition.reports.push(report.clone());
    Ok(report)
}

fn step_engine(step: usize, lexicon: &Lexicon) -> ArticulationEngine {
    // each step gets its own namespace so qualified terms stay unambiguous
    let generator = GeneratorConfig { art_name: format!("art{}", step + 1), ..Default::default() };
    let config = EngineConfig { max_rounds: 3, generator };
    ArticulationEngine::new(MatcherPipeline::standard(lexicon.clone())).with_config(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::AcceptAll;
    use onion_lexicon::builtin::transport_lexicon;
    use onion_ontology::examples::{carrier, factory};
    use onion_ontology::OntologyBuilder;

    fn retailer() -> Ontology {
        OntologyBuilder::new("retailer")
            .class_under("Vehicle", "Inventory")
            .class_under("Truck", "Vehicle")
            .attr("Price", "Vehicle")
            .build()
            .unwrap()
    }

    #[test]
    fn compose_three_sources() {
        let c = carrier();
        let f = factory();
        let r = retailer();
        let lex = transport_lexicon();
        let comp = compose_all(&[&c, &f, &r], &lex, &mut AcceptAll).unwrap();
        assert_eq!(comp.source_count(), 3);
        assert_eq!(comp.steps.len(), 2);
        // namespaces are distinct per step
        assert_eq!(comp.steps[0].name(), "art1");
        assert_eq!(comp.steps[1].name(), "art2");
        // the second step bridges art1 terms to retailer terms
        assert!(comp
            .top()
            .bridges
            .iter()
            .any(|b| b.src.in_ontology("art1") || b.dst.in_ontology("art1")));
        assert!(comp
            .top()
            .bridges
            .iter()
            .any(|b| b.src.in_ontology("retailer") || b.dst.in_ontology("retailer")));
    }

    #[test]
    fn existing_steps_untouched_by_add_source() {
        let c = carrier();
        let f = factory();
        let r = retailer();
        let lex = transport_lexicon();
        let mut comp = compose_all(&[&c, &f], &lex, &mut AcceptAll).unwrap();
        let first = comp.steps[0].bridges.clone();
        let report = add_source(&mut comp, &r, &lex, &mut AcceptAll).unwrap();
        assert!(report.accepted > 0);
        assert_eq!(comp.steps[0].bridges, first, "reuse without restructuring (§4.2)");
        assert_eq!(comp.source_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two sources")]
    fn compose_needs_two() {
        let c = carrier();
        let lex = transport_lexicon();
        let _ = compose_all(&[&c], &lex, &mut AcceptAll);
    }

    #[test]
    fn semantic_path_spans_all_sources() {
        // carrier.Trucks should connect through art1 and art2 to
        // retailer.Truck in the composed bridge graph
        let c = carrier();
        let f = factory();
        let r = retailer();
        let lex = transport_lexicon();
        let comp = compose_all(&[&c, &f, &r], &lex, &mut AcceptAll).unwrap();
        // build a directed reachability over all bridges
        let mut adj: std::collections::HashMap<String, Vec<String>> = Default::default();
        for art in &comp.steps {
            for b in &art.bridges {
                adj.entry(b.src.to_string()).or_default().push(b.dst.to_string());
                // equivalences give reverse legs already; subclass edges in
                // art ontologies connect the namespaces
            }
            let g = art.ontology.graph();
            for e in g.edges() {
                let s = format!("{}.{}", art.name(), g.node_label(e.src).unwrap());
                let d = format!("{}.{}", art.name(), g.node_label(e.dst).unwrap());
                adj.entry(s).or_default().push(d);
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut q = std::collections::VecDeque::new();
        q.push_back("carrier.Trucks".to_string());
        let mut reached_retailer = false;
        while let Some(cur) = q.pop_front() {
            if cur.starts_with("retailer.") {
                reached_retailer = true;
                break;
            }
            if let Some(ns) = adj.get(&cur) {
                for n in ns {
                    if seen.insert(n.clone()) {
                        q.push_back(n.clone());
                    }
                }
            }
        }
        assert!(reached_retailer, "carrier.Trucks should reach retailer.* via the ladder");
    }
}
