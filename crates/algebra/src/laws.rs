//! Executable algebraic properties.
//!
//! §5: "The algebra forms the basis for the ONION system." These checks
//! encode the relationships the paper states between the operators —
//! intersection is contained in union, difference is disjoint from the
//! determined set, union leaves sources untouched — as reusable
//! predicates. The property-based tests (workspace `tests/`) run them
//! over generated ontology pairs.

use onion_articulate::ArticulationGenerator;
use onion_ontology::Ontology;
use onion_rules::RuleSet;

use crate::difference::difference;
use crate::intersect::intersect;
use crate::union::union;
use crate::Result;

/// A law-check outcome: `Ok(())` or a description of the violation.
pub type LawResult = std::result::Result<(), String>;

/// Every intersection term appears (qualified) in the union graph.
pub fn intersection_in_union(
    o1: &Ontology,
    o2: &Ontology,
    rules: &RuleSet,
    generator: &ArticulationGenerator,
) -> Result<LawResult> {
    let i = intersect(o1, o2, rules, generator)?;
    let u = union(o1, o2, rules, generator)?;
    for n in i.graph().nodes() {
        let q = format!("{}.{}", i.name(), n.label);
        if !u.graph.contains_label(&q) {
            return Ok(Err(format!("intersection term {q} missing from union")));
        }
    }
    Ok(Ok(()))
}

/// The union's node set is exactly `N1 ∪ N2 ∪ NA` (sizes match; all
/// qualified source terms present).
pub fn union_node_law(
    o1: &Ontology,
    o2: &Ontology,
    rules: &RuleSet,
    generator: &ArticulationGenerator,
) -> Result<LawResult> {
    let u = union(o1, o2, rules, generator)?;
    let expected = o1.term_count() + o2.term_count() + u.articulation.ontology.term_count();
    if u.graph.node_count() != expected {
        return Ok(Err(format!("union has {} nodes, expected {expected}", u.graph.node_count())));
    }
    for (o, prefix) in [(o1, o1.name()), (o2, o2.name())] {
        for n in o.graph().nodes() {
            let q = format!("{prefix}.{}", n.label);
            if !u.graph.contains_label(&q) {
                return Ok(Err(format!("source term {q} missing from union")));
            }
        }
    }
    Ok(Ok(()))
}

/// `O1 − O2` never contains a determined term, and is a subgraph of `O1`.
pub fn difference_disjoint_from_determined(
    o1: &Ontology,
    o2: &Ontology,
    rules: &RuleSet,
    generator: &ArticulationGenerator,
) -> Result<LawResult> {
    let art = generator.generate(rules, &[o1, o2])?;
    let (d, report) = difference(o1, o2, &art)?;
    for t in &report.determined {
        if d.contains_label(t) {
            return Ok(Err(format!("determined term {t} survived the difference")));
        }
    }
    for n in d.nodes() {
        if !o1.defines(n.label) {
            return Ok(Err(format!("difference invented term {}", n.label)));
        }
    }
    for e in d.edges() {
        let s = d.node_label(e.src).expect("live");
        let t = d.node_label(e.dst).expect("live");
        if !o1.graph().has_edge(s, e.label, t) {
            return Ok(Err(format!("difference invented edge ({s}, {}, {t})", e.label)));
        }
    }
    Ok(Ok(()))
}

/// With no rules: union is disjoint juxtaposition, intersection is
/// empty, difference is identity.
pub fn empty_rules_laws(
    o1: &Ontology,
    o2: &Ontology,
    generator: &ArticulationGenerator,
) -> Result<LawResult> {
    let rules = RuleSet::new();
    let u = union(o1, o2, &rules, generator)?;
    if u.graph.node_count() != o1.term_count() + o2.term_count() {
        return Ok(Err("empty-rule union is not a juxtaposition".into()));
    }
    let i = intersect(o1, o2, &rules, generator)?;
    if i.term_count() != 0 {
        return Ok(Err("empty-rule intersection is not empty".into()));
    }
    let art = generator.generate(&rules, &[o1, o2])?;
    let (d, _) = difference(o1, o2, &art)?;
    if !d.same_shape(o1.graph()) {
        return Ok(Err("empty-rule difference is not the identity".into()));
    }
    Ok(Ok(()))
}

/// Runs every law; returns all violations.
pub fn check_all(
    o1: &Ontology,
    o2: &Ontology,
    rules: &RuleSet,
    generator: &ArticulationGenerator,
) -> Result<Vec<String>> {
    let mut violations = Vec::new();
    for law in [
        intersection_in_union(o1, o2, rules, generator)?,
        union_node_law(o1, o2, rules, generator)?,
        difference_disjoint_from_determined(o1, o2, rules, generator)?,
        empty_rules_laws(o1, o2, generator)?,
    ] {
        if let Err(v) = law {
            violations.push(v);
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    #[test]
    fn fig2_satisfies_all_laws() {
        let c = carrier();
        let f = factory();
        let violations = check_all(&c, &f, &fig2_rules(), &ArticulationGenerator::new()).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn laws_hold_for_single_rule() {
        let c = carrier();
        let f = factory();
        let rules = onion_rules::parse_rules("carrier.Cars => factory.Vehicle\n").unwrap();
        let violations = check_all(&c, &f, &rules, &ArticulationGenerator::new()).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn laws_hold_both_directions() {
        let c = carrier();
        let f = factory();
        let rules = onion_rules::parse_rules("factory.Truck => carrier.Trucks\n").unwrap();
        let gen = ArticulationGenerator::new();
        assert!(check_all(&c, &f, &rules, &gen).unwrap().is_empty());
        assert!(check_all(&f, &c, &rules, &gen).unwrap().is_empty());
    }
}
