//! The `filter` unary operator — the algebra's *select* (§5).
//!
//! "Given an ontology and a graph pattern an unary operation matches the
//! pattern and returns selected portions of the ontology graph." Filter
//! keeps exactly the nodes and edges that participate in some match of
//! the pattern.

use onion_graph::{MatchConfig, Matcher, OntGraph, Pattern};
use onion_ontology::Ontology;

use crate::Result;

/// Returns the subgraph of `ontology` induced by all matches of
/// `pattern` (matched nodes plus the matched pattern edges between
/// them). The result graph is named `filter(<name>)`.
pub fn filter(ontology: &Ontology, pattern: &Pattern, config: &MatchConfig) -> Result<OntGraph> {
    let g = ontology.graph();
    let matcher = Matcher::new(g).with_config(config.clone());
    let matches = matcher.find_all(pattern)?;
    // resolve each pattern edge's label constraint to an interned id
    // once; an unresolved (never-interned) label admits nothing unless
    // labels are relaxed
    let constraint_ids: Vec<Option<onion_graph::LabelId>> = pattern
        .edges
        .iter()
        .map(|pe| match &pe.constraint {
            onion_graph::EdgeConstraint::Label(l) => g.label_id(l),
            onion_graph::EdgeConstraint::Any => None,
        })
        .collect();
    let mut out = OntGraph::new(format!("filter({})", g.name()));
    for m in &matches {
        for &n in &m.nodes {
            out.ensure_node(g.node_label(n).expect("matched nodes are live"))?;
        }
        for (pe, cid) in pattern.edges.iter().zip(&constraint_ids) {
            let src = m.nodes[pe.src];
            let dst = m.nodes[pe.dst];
            // find the concrete graph edge(s) realising this pattern
            // edge — id comparisons only; labels resolve on insert
            for (_, lid, d) in g.out_edge_entries(src) {
                if d != dst {
                    continue;
                }
                let admissible = match &pe.constraint {
                    onion_graph::EdgeConstraint::Any => true,
                    onion_graph::EdgeConstraint::Label(_) => {
                        config.relax_edge_labels || *cid == Some(lid)
                    }
                };
                if admissible {
                    out.ensure_edge_by_labels(
                        g.node_label(src).expect("live"),
                        g.resolve(lid),
                        g.node_label(dst).expect("live"),
                    )?;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_ontology::examples::carrier;

    #[test]
    fn filter_selects_matching_subgraph() {
        let c = carrier();
        // all subclass links directly under Transportation
        let mut p = Pattern::new();
        let x = p.any_node();
        let t = p.node("Transportation");
        p.edge(x, "SubclassOf", t);
        let out = filter(&c, &p, &MatchConfig::default()).unwrap();
        assert!(out.contains_label("Cars"));
        assert!(out.contains_label("Trucks"));
        assert!(out.contains_label("Transportation"));
        assert!(!out.contains_label("SUV"), "SUV is two hops away");
        assert!(!out.contains_label("Price"), "attributes not matched");
        assert!(out.has_edge("Cars", "SubclassOf", "Transportation"));
        assert_eq!(out.name(), "filter(carrier)");
    }

    #[test]
    fn filter_empty_when_no_match() {
        let c = carrier();
        let p = Pattern::parse("Ghost -SubclassOf-> Transportation").unwrap();
        let out = filter(&c, &p, &MatchConfig::default()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn filter_with_relaxed_edges_keeps_actual_labels() {
        let c = carrier();
        let p = Pattern::parse("Price -SubclassOf-> Cars").unwrap(); // wrong label
        let cfg = MatchConfig { relax_edge_labels: true, ..Default::default() };
        let out = filter(&c, &p, &cfg).unwrap();
        assert!(out.has_edge("Price", "AttributeOf", "Cars"), "real label preserved");
    }

    #[test]
    fn filter_attribute_pattern_from_paper() {
        // truck(O: owner, model) — §3's textual example
        let c = carrier();
        let p = Pattern::parse("Trucks(O: Owner, Model)").unwrap();
        let out = filter(&c, &p, &MatchConfig::default()).unwrap();
        assert_eq!(out.node_count(), 3);
        assert!(out.has_edge("Owner", "AttributeOf", "Trucks"));
        assert!(out.has_edge("Model", "AttributeOf", "Trucks"));
    }
}
