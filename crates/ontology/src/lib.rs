//! # onion-ontology
//!
//! The ontology layer of the ONION reproduction: a named, *consistent*
//! ontology is a directed labeled graph (from `onion-graph`) together
//! with the properties of its relationships (from `onion-rules`) and the
//! local rules that structure it.
//!
//! The paper defines an ontology as "a knowledge structure to enable
//! sharing and reuse of knowledge by specifying the terms and the
//! relationships among them" (§1), requiring consistency — "a term in an
//! ontology does not refer to different concepts within one knowledge
//! base" — which this crate enforces via the graph's unique-label mode
//! plus the [`consistency`] checks (acyclic `SubclassOf`, sane
//! `InstanceOf` usage).
//!
//! [`examples`] reconstructs the paper's Fig. 2 running example (the
//! `carrier` and `factory` source ontologies); the exact node/edge
//! inventory is documented there and asserted by experiment E1.

pub mod builder;
pub mod consistency;
pub mod examples;
pub mod import;
pub mod ontology;

pub use builder::OntologyBuilder;
pub use consistency::{check, ConsistencyIssue};
pub use ontology::Ontology;

/// Result alias re-exported from the graph layer (ontology operations
/// surface graph errors).
pub type Result<T> = std::result::Result<T, onion_graph::GraphError>;
