//! Ontology consistency checks.
//!
//! "The ontologies considered in this paper are consistent, that is, a
//! term in an ontology does not refer to different concepts within one
//! knowledge base. A consistent vocabulary is needed for unambiguous
//! querying and unifying information from multiple sources." (§1)
//!
//! Label uniqueness is enforced structurally by the graph; this module
//! checks the semantic invariants on top:
//!
//! * the `SubclassOf` hierarchy must be acyclic (a cycle makes every
//!   member class the same concept under transitivity);
//! * every relation declared transitive must be acyclic for the same
//!   reason, unless it is also declared symmetric;
//! * `InstanceOf` sources should not simultaneously be classes (have
//!   subclasses or instances of their own) — a smell, reported as a
//!   warning;
//! * attribute nodes should not be instance nodes.

use onion_graph::rel;
use onion_graph::traverse::{topo_sort, EdgeFilter};

use crate::ontology::Ontology;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates consistency; articulation should refuse the ontology.
    Error,
    /// Suspicious modelling; the expert should review.
    Warning,
}

/// One consistency finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyIssue {
    /// How bad it is.
    pub severity: Severity,
    /// Machine-readable kind.
    pub kind: IssueKind,
    /// Human-readable description.
    pub message: String,
}

/// Kinds of findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueKind {
    /// A transitive relation contains a cycle.
    RelationCycle {
        /// The relation label.
        relation: String,
        /// Labels on one witness cycle.
        cycle: Vec<String>,
    },
    /// A node is used both as an instance and as a class.
    InstanceIsClass {
        /// The offending node's label.
        node: String,
    },
    /// A node is used both as an attribute and as an instance.
    AttributeIsInstance {
        /// The offending node's label.
        node: String,
    },
}

/// Runs all checks, returning findings in deterministic order.
pub fn check(ontology: &Ontology) -> Vec<ConsistencyIssue> {
    let mut issues = Vec::new();
    let g = ontology.graph();

    // 1. transitive relations must be acyclic (unless symmetric)
    let mut transitive_rels: Vec<String> = ontology
        .relations()
        .iter()
        .filter(|(_, p)| p.transitive && !p.symmetric)
        .map(|(n, _)| n.to_string())
        .collect();
    // SubclassOf is always checked even if the registry was emptied.
    if !transitive_rels.iter().any(|r| r == rel::SUBCLASS_OF) {
        transitive_rels.push(rel::SUBCLASS_OF.to_string());
    }
    transitive_rels.sort();
    for relation in transitive_rels {
        if let Err(cycle) = topo_sort(g, &EdgeFilter::label(&relation)) {
            let mut labels: Vec<String> =
                cycle.iter().map(|&n| g.node_label(n).expect("live").to_string()).collect();
            // rotate so the smallest label leads: deterministic reporting
            if let Some(min_pos) =
                labels.iter().enumerate().min_by(|a, b| a.1.cmp(b.1)).map(|(i, _)| i)
            {
                labels.rotate_left(min_pos);
            }
            issues.push(ConsistencyIssue {
                severity: Severity::Error,
                message: format!(
                    "transitive relation {relation:?} has cycle: {}",
                    labels.join(" -> ")
                ),
                kind: IssueKind::RelationCycle { relation, cycle: labels },
            });
        }
    }

    // 2. instance/class and attribute/instance smells
    let mut smells: Vec<(bool, String)> = Vec::new(); // (is_instance_class, node)
    for n in g.node_ids() {
        let is_instance = g.out_neighbors(n, rel::INSTANCE_OF).next().is_some();
        if !is_instance {
            continue;
        }
        let label = g.node_label(n).expect("live").to_string();
        let is_class = g.in_neighbors(n, rel::SUBCLASS_OF).next().is_some()
            || g.in_neighbors(n, rel::INSTANCE_OF).next().is_some();
        if is_class {
            smells.push((true, label.clone()));
        }
        let is_attribute = g.out_neighbors(n, rel::ATTRIBUTE_OF).next().is_some();
        if is_attribute {
            smells.push((false, label));
        }
    }
    smells.sort();
    for (is_ic, node) in smells {
        if is_ic {
            issues.push(ConsistencyIssue {
                severity: Severity::Warning,
                message: format!("{node:?} is both an instance and a class"),
                kind: IssueKind::InstanceIsClass { node },
            });
        } else {
            issues.push(ConsistencyIssue {
                severity: Severity::Warning,
                message: format!("{node:?} is both an attribute and an instance"),
                kind: IssueKind::AttributeIsInstance { node },
            });
        }
    }

    issues
}

/// True if `ontology` has no `Error`-severity findings.
pub fn is_consistent(ontology: &Ontology) -> bool {
    check(ontology).iter().all(|i| i.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OntologyBuilder;

    #[test]
    fn clean_ontology_passes() {
        let o = OntologyBuilder::new("t")
            .class_under("Car", "Vehicle")
            .attr("Price", "Car")
            .instance("MyCar", "Car")
            .build()
            .unwrap();
        assert!(check(&o).is_empty());
        assert!(is_consistent(&o));
    }

    #[test]
    fn subclass_cycle_is_error() {
        let o = OntologyBuilder::new("t")
            .class_under("A", "B")
            .class_under("B", "C")
            .class_under("C", "A")
            .build()
            .unwrap();
        let issues = check(&o);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Error);
        match &issues[0].kind {
            IssueKind::RelationCycle { relation, cycle } => {
                assert_eq!(relation, "SubclassOf");
                assert_eq!(cycle.len(), 3);
                assert_eq!(cycle[0], "A", "rotated to smallest label");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!is_consistent(&o));
    }

    #[test]
    fn symmetric_transitive_relation_may_cycle() {
        let mut o = OntologyBuilder::new("t")
            .relate("A", "sameAs", "B")
            .relate("B", "sameAs", "A")
            .build()
            .unwrap();
        o.relations_mut().declare(
            "sameAs",
            onion_rules::properties::RelationProperties::none().transitive().symmetric(),
        );
        assert!(check(&o).is_empty());
    }

    #[test]
    fn custom_transitive_relation_checked() {
        let mut o = OntologyBuilder::new("t")
            .relate("A", "partOf", "B")
            .relate("B", "partOf", "A")
            .build()
            .unwrap();
        o.relations_mut()
            .declare("partOf", onion_rules::properties::RelationProperties::none().transitive());
        let issues = check(&o);
        assert_eq!(issues.len(), 1);
        assert!(
            matches!(&issues[0].kind, IssueKind::RelationCycle { relation, .. } if relation == "partOf")
        );
    }

    #[test]
    fn instance_as_class_warns() {
        let o = OntologyBuilder::new("t")
            .instance("Weird", "Car")
            .class_under("Sub", "Weird")
            .build()
            .unwrap();
        let issues = check(&o);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Warning);
        assert!(matches!(&issues[0].kind, IssueKind::InstanceIsClass { node } if node == "Weird"));
        assert!(is_consistent(&o), "warnings do not break consistency");
    }

    #[test]
    fn attribute_as_instance_warns() {
        let o = OntologyBuilder::new("t")
            .attr("Price", "Car")
            .instance("Price", "Attribute")
            .build()
            .unwrap();
        let issues = check(&o);
        assert!(issues.iter().any(
            |i| matches!(&i.kind, IssueKind::AttributeIsInstance { node } if node == "Price")
        ));
    }

    #[test]
    fn self_loop_subclass_is_cycle() {
        let o = OntologyBuilder::new("t").class_under("A", "A").build().unwrap();
        let issues = check(&o);
        assert!(
            matches!(&issues[0].kind, IssueKind::RelationCycle { cycle, .. } if cycle.len() == 1)
        );
    }
}
