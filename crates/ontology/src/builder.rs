//! Fluent construction of ontologies.
//!
//! The builder reads like the class declarations the viewer would show:
//!
//! ```
//! use onion_ontology::OntologyBuilder;
//!
//! let carrier = OntologyBuilder::new("carrier")
//!     .class("Transportation")
//!     .class_under("Cars", "Transportation")
//!     .class_under("SUV", "Cars")
//!     .attr("Price", "Cars")
//!     .instance("MyCar", "Cars")
//!     .build()
//!     .unwrap();
//! assert!(carrier.is_subclass("SUV", "Transportation"));
//! ```

use onion_graph::GraphError;

use crate::ontology::Ontology;
use crate::Result;

/// Fluent ontology builder; errors are deferred to [`OntologyBuilder::build`]
/// so chains stay readable.
#[derive(Debug)]
pub struct OntologyBuilder {
    ontology: Ontology,
    deferred_error: Option<GraphError>,
}

impl OntologyBuilder {
    /// Starts building an ontology called `name`.
    pub fn new(name: &str) -> Self {
        OntologyBuilder { ontology: Ontology::new(name), deferred_error: None }
    }

    fn run(mut self, f: impl FnOnce(&mut Ontology) -> Result<()>) -> Self {
        if self.deferred_error.is_none() {
            if let Err(e) = f(&mut self.ontology) {
                self.deferred_error = Some(e);
            }
        }
        self
    }

    /// Declares a root class.
    pub fn class(self, name: &str) -> Self {
        self.run(|o| o.graph_mut().ensure_node(name).map(|_| ()))
    }

    /// Declares `name` as a subclass of `parent` (creating both).
    pub fn class_under(self, name: &str, parent: &str) -> Self {
        self.run(|o| o.subclass(name, parent))
    }

    /// Attaches attribute `attr` to `class`.
    pub fn attr(self, attr: &str, class: &str) -> Self {
        self.run(|o| o.attribute(attr, class))
    }

    /// Declares an instance of `class`.
    pub fn instance(self, name: &str, class: &str) -> Self {
        self.run(|o| o.instance(name, class))
    }

    /// Adds an arbitrary verb edge.
    pub fn relate(self, src: &str, verb: &str, dst: &str) -> Self {
        self.run(|o| o.relate(src, verb, dst))
    }

    /// Adds a local structuring rule (parsed, e.g. `Owner => Person`).
    pub fn local_rule(self, rule: &str) -> Self {
        self.run(|o| match onion_rules::parser::parse_rule(rule) {
            Ok(r) => {
                o.local_rules_mut().push(r);
                Ok(())
            }
            Err(e) => Err(GraphError::Parse { line: 0, msg: e.to_string() }),
        })
    }

    /// Finishes, returning the first deferred error if any occurred.
    pub fn build(self) -> Result<Ontology> {
        match self.deferred_error {
            Some(e) => Err(e),
            None => Ok(self.ontology),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_hierarchy() {
        let o = OntologyBuilder::new("t")
            .class("Root")
            .class_under("A", "Root")
            .class_under("B", "A")
            .attr("P", "A")
            .instance("i", "B")
            .relate("A", "likes", "B")
            .build()
            .unwrap();
        assert!(o.is_subclass("B", "Root"));
        assert_eq!(o.attributes_of("A"), vec!["P"]);
        assert_eq!(o.instances_of("B"), vec!["i"]);
        assert!(o.graph().has_edge("A", "likes", "B"));
    }

    #[test]
    fn first_error_is_reported() {
        let err = OntologyBuilder::new("t")
            .class("A")
            .class_under("", "A") // empty label
            .class("B")
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::EmptyLabel);
    }

    #[test]
    fn local_rules_accumulate() {
        let o = OntologyBuilder::new("t")
            .class("Owner")
            .class("Person")
            .local_rule("Owner => Person")
            .build()
            .unwrap();
        assert_eq!(o.local_rules().len(), 1);
    }

    #[test]
    fn bad_local_rule_errors() {
        assert!(OntologyBuilder::new("t").local_rule("not a rule").build().is_err());
    }

    #[test]
    fn duplicate_class_is_idempotent() {
        let o = OntologyBuilder::new("t").class("A").class("A").build().unwrap();
        assert_eq!(o.term_count(), 1);
    }
}
