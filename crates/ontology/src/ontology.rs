//! The [`Ontology`] type: a named consistent graph plus relation
//! properties.

use onion_graph::{rel, GraphError, NodeId, OntGraph};
use onion_rules::{RelationRegistry, RuleSet, Term};

use crate::Result;

/// A source ontology: name, concept graph, relationship properties and
/// local structuring rules.
///
/// The graph is always in consistent (unique-label) mode; the paper
/// addresses nodes by their term labels throughout (§3 end) and so do we.
#[derive(Debug, Clone)]
pub struct Ontology {
    graph: OntGraph,
    relations: RelationRegistry,
    local_rules: RuleSet,
}

impl Ontology {
    /// Creates an empty ontology with the ONION default relation
    /// properties (`SubclassOf` transitive, etc.).
    pub fn new(name: &str) -> Self {
        Ontology {
            graph: OntGraph::new(name),
            relations: RelationRegistry::onion_default(),
            local_rules: RuleSet::new(),
        }
    }

    /// Wraps an existing consistent graph.
    ///
    /// Returns an error if the graph allows duplicate labels — ontologies
    /// must be consistent (§1).
    pub fn from_graph(graph: OntGraph) -> Result<Self> {
        if !graph.unique_labels() {
            return Err(GraphError::DuplicateLabel(format!(
                "graph {:?} allows duplicate labels; ontologies must be consistent",
                graph.name()
            )));
        }
        Ok(Ontology {
            graph,
            relations: RelationRegistry::onion_default(),
            local_rules: RuleSet::new(),
        })
    }

    /// The ontology's name (used as the qualification prefix).
    pub fn name(&self) -> &str {
        self.graph.name()
    }

    /// Read access to the concept graph.
    pub fn graph(&self) -> &OntGraph {
        &self.graph
    }

    /// Mutable access to the concept graph.
    pub fn graph_mut(&mut self) -> &mut OntGraph {
        &mut self.graph
    }

    /// Consumes self, returning the graph.
    pub fn into_graph(self) -> OntGraph {
        self.graph
    }

    /// The relation-property registry.
    pub fn relations(&self) -> &RelationRegistry {
        &self.relations
    }

    /// Mutable relation-property registry.
    pub fn relations_mut(&mut self) -> &mut RelationRegistry {
        &mut self.relations
    }

    /// Local structuring rules (intra-ontology implications).
    pub fn local_rules(&self) -> &RuleSet {
        &self.local_rules
    }

    /// Mutable local rules.
    pub fn local_rules_mut(&mut self) -> &mut RuleSet {
        &mut self.local_rules
    }

    // ------------------------------------------------------------------
    // Term handling
    // ------------------------------------------------------------------

    /// Qualifies a local label into a [`Term`].
    pub fn term(&self, label: &str) -> Term {
        Term::qualified(self.name(), label)
    }

    /// The qualified string form `name.label` used in fact bases and
    /// unified graphs.
    pub fn qualified(&self, label: &str) -> String {
        format!("{}.{}", self.name(), label)
    }

    /// Resolves a [`Term`] to this ontology's node, if the term is
    /// qualified with this ontology's name (or unqualified) and present.
    pub fn resolve(&self, term: &Term) -> Option<NodeId> {
        match &term.ontology {
            Some(o) if o != self.name() => None,
            _ => self.graph.node_by_label(&term.name),
        }
    }

    /// True if the ontology defines `label`.
    pub fn defines(&self, label: &str) -> bool {
        self.graph.contains_label(label)
    }

    // ------------------------------------------------------------------
    // Convenience constructors for the canonical relationships
    // ------------------------------------------------------------------

    /// Adds `sub SubclassOf sup` (creating nodes as needed).
    pub fn subclass(&mut self, sub: &str, sup: &str) -> Result<()> {
        self.graph.ensure_edge_by_labels(sub, rel::SUBCLASS_OF, sup).map(|_| ())
    }

    /// Adds `attr AttributeOf class`.
    pub fn attribute(&mut self, attr: &str, class: &str) -> Result<()> {
        self.graph.ensure_edge_by_labels(attr, rel::ATTRIBUTE_OF, class).map(|_| ())
    }

    /// Adds `instance InstanceOf class`.
    pub fn instance(&mut self, instance: &str, class: &str) -> Result<()> {
        self.graph.ensure_edge_by_labels(instance, rel::INSTANCE_OF, class).map(|_| ())
    }

    /// Adds an arbitrary verb edge.
    pub fn relate(&mut self, src: &str, verb: &str, dst: &str) -> Result<()> {
        self.graph.ensure_edge_by_labels(src, verb, dst).map(|_| ())
    }

    // ------------------------------------------------------------------
    // Queries used by articulation and algebra
    // ------------------------------------------------------------------

    /// All (transitive) superclasses of `label`.
    pub fn superclasses(&self, label: &str) -> Vec<String> {
        let Some(n) = self.graph.node_by_label(label) else {
            return Vec::new();
        };
        let mut v: Vec<String> = onion_graph::closure::ancestors(&self.graph, n, rel::SUBCLASS_OF)
            .into_iter()
            .map(|m| self.graph.node_label(m).expect("live").to_string())
            .collect();
        v.sort();
        v
    }

    /// All (transitive) subclasses of `label`.
    pub fn subclasses(&self, label: &str) -> Vec<String> {
        let Some(n) = self.graph.node_by_label(label) else {
            return Vec::new();
        };
        let mut v: Vec<String> =
            onion_graph::closure::descendants(&self.graph, n, rel::SUBCLASS_OF)
                .into_iter()
                .map(|m| self.graph.node_label(m).expect("live").to_string())
                .collect();
        v.sort();
        v
    }

    /// Is `sub` a (transitive) subclass of `sup`?
    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        let (Some(a), Some(b)) = (self.graph.node_by_label(sub), self.graph.node_by_label(sup))
        else {
            return false;
        };
        if a == b {
            return false;
        }
        onion_graph::traverse::has_path(
            &self.graph,
            a,
            b,
            &onion_graph::traverse::EdgeFilter::label(rel::SUBCLASS_OF),
        )
    }

    /// The attributes attached to `class` (directly).
    pub fn attributes_of(&self, class: &str) -> Vec<String> {
        let Some(n) = self.graph.node_by_label(class) else {
            return Vec::new();
        };
        let mut v: Vec<String> = self
            .graph
            .in_neighbors(n, rel::ATTRIBUTE_OF)
            .map(|m| self.graph.node_label(m).expect("live").to_string())
            .collect();
        v.sort();
        v
    }

    /// Attributes of `class` including those inherited from transitive
    /// superclasses — attribute inheritance along the subclass hierarchy.
    pub fn attributes_inherited(&self, class: &str) -> Vec<String> {
        let mut all = self.attributes_of(class);
        for sup in self.superclasses(class) {
            all.extend(self.attributes_of(&sup));
        }
        all.sort();
        all.dedup();
        all
    }

    /// Direct instances of `class`.
    pub fn instances_of(&self, class: &str) -> Vec<String> {
        let Some(n) = self.graph.node_by_label(class) else {
            return Vec::new();
        };
        let mut v: Vec<String> = self
            .graph
            .in_neighbors(n, rel::INSTANCE_OF)
            .map(|m| self.graph.node_label(m).expect("live").to_string())
            .collect();
        v.sort();
        v
    }

    /// Number of concept nodes.
    pub fn term_count(&self) -> usize {
        self.graph.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ontology {
        let mut o = Ontology::new("carrier");
        o.subclass("Cars", "Transportation").unwrap();
        o.subclass("Trucks", "Transportation").unwrap();
        o.subclass("SUV", "Cars").unwrap();
        o.attribute("Price", "Cars").unwrap();
        o.attribute("Owner", "Transportation").unwrap();
        o.instance("MyCar", "Cars").unwrap();
        o
    }

    #[test]
    fn names_and_terms() {
        let o = sample();
        assert_eq!(o.name(), "carrier");
        assert_eq!(o.qualified("Cars"), "carrier.Cars");
        assert_eq!(o.term("Cars").to_string(), "carrier.Cars");
        assert!(o.defines("SUV"));
        assert!(!o.defines("Ghost"));
    }

    #[test]
    fn resolve_respects_qualification() {
        let o = sample();
        assert!(o.resolve(&Term::qualified("carrier", "Cars")).is_some());
        assert!(o.resolve(&Term::unqualified("Cars")).is_some());
        assert!(o.resolve(&Term::qualified("factory", "Cars")).is_none());
        assert!(o.resolve(&Term::qualified("carrier", "Ghost")).is_none());
    }

    #[test]
    fn from_graph_requires_consistency() {
        let g = OntGraph::new_multi("messy");
        assert!(Ontology::from_graph(g).is_err());
        let g = OntGraph::new("clean");
        assert!(Ontology::from_graph(g).is_ok());
    }

    #[test]
    fn subclass_queries_transitive() {
        let o = sample();
        assert_eq!(o.superclasses("SUV"), vec!["Cars", "Transportation"]);
        assert_eq!(o.subclasses("Transportation"), vec!["Cars", "SUV", "Trucks"]);
        assert!(o.is_subclass("SUV", "Transportation"));
        assert!(!o.is_subclass("Transportation", "SUV"));
        assert!(!o.is_subclass("SUV", "SUV"), "strict subclass");
        assert!(!o.is_subclass("Ghost", "Cars"));
    }

    #[test]
    fn attributes_direct_and_inherited() {
        let o = sample();
        assert_eq!(o.attributes_of("Cars"), vec!["Price"]);
        assert_eq!(o.attributes_inherited("Cars"), vec!["Owner", "Price"]);
        assert_eq!(o.attributes_inherited("SUV"), vec!["Owner", "Price"]);
        assert!(o.attributes_of("Ghost").is_empty());
    }

    #[test]
    fn instances() {
        let o = sample();
        assert_eq!(o.instances_of("Cars"), vec!["MyCar"]);
        assert!(o.instances_of("Trucks").is_empty());
    }

    #[test]
    fn default_relations_present() {
        let o = Ontology::new("x");
        assert!(o.relations().is_transitive("SubclassOf"));
    }

    #[test]
    fn term_count() {
        assert_eq!(sample().term_count(), 7);
    }
}
