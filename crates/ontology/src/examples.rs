//! The paper's Fig. 2 running example, reconstructed.
//!
//! Fig. 2 shows "selected portions of two ontologies … carrier and
//! factory … related to a transportation application … greatly
//! simplified", articulated through a `transport`(ation) ontology. The
//! published figure is partially ambiguous (several "most obvious edges
//! have been omitted" by the authors), so this module fixes a **canonical
//! reconstruction** containing every node and relationship the paper's
//! prose references:
//!
//! * the `carrier:car:driver` path pattern (§3 "Example") — `Cars` has an
//!   outgoing edge to `Driver`;
//! * the `truck(O: owner, model)` attribute pattern (§3) — `Trucks` has
//!   `Owner` and `Model` attributes;
//! * `MyCar`, an instance of `Cars` with a `Price` of 2000 (Fig. 2 list);
//! * the conjunction example (§4.1): `factory.CargoCarrier ∧
//!   factory.Vehicle ⇒ carrier.Trucks`, with `Truck` a subclass of both
//!   `Vehicle` and `CargoCarrier` (via `GoodsVehicle`);
//! * the disjunction example (§4.1): `factory.Vehicle ⇒ carrier.Cars ∨
//!   carrier.Trucks`;
//! * the functional rules (§4.1/Fig. 2): carrier prices in Dutch
//!   Guilders, factory prices in Pound Sterling, normalised to the Euro
//!   (`DGToEuroFn`, `PSToEuroFn` and inverses);
//! * the intra-articulation rule `transport.Owner ⇒ transport.Person`
//!   (§4.1).
//!
//! Experiment E1 regenerates the articulation from [`fig2_rules`] and
//! asserts the exact node/edge inventory (see `tests/fig2_exact.rs` at
//! the workspace root).

use crate::builder::OntologyBuilder;
use crate::ontology::Ontology;

/// The `carrier` source ontology (left side of Fig. 2).
///
/// A logistics operator's view: fleets of cars and trucks, drivers,
/// owners, prices in Dutch Guilders.
pub fn carrier() -> Ontology {
    OntologyBuilder::new("carrier")
        .class("Transportation")
        .class_under("Cars", "Transportation")
        .class_under("Trucks", "Transportation")
        .class_under("SUV", "Cars")
        .instance("MyCar", "Cars")
        .attr("Price", "Cars")
        .attr("Price", "Trucks")
        .attr("Owner", "Cars")
        .attr("Owner", "Trucks")
        .attr("Model", "Trucks")
        .attr("Price", "MyCar")
        .attr("2000", "Price")
        .relate("Cars", "hasDriver", "Driver")
        .relate("Price", "expressedIn", "DutchGuilders")
        .build()
        .expect("carrier ontology is well-formed")
}

/// The `factory` source ontology (right side of Fig. 2).
///
/// A manufacturer's view: vehicles and cargo carriers, buyers, persons,
/// prices in Pound Sterling.
pub fn factory() -> Ontology {
    OntologyBuilder::new("factory")
        .class("Transportation")
        .class_under("Vehicle", "Transportation")
        .class_under("CargoCarrier", "Transportation")
        .class_under("GoodsVehicle", "Vehicle")
        .class_under("GoodsVehicle", "CargoCarrier")
        .class_under("Truck", "GoodsVehicle")
        .class_under("PassengerCar", "Vehicle")
        .class_under("Driver", "Person")
        .class_under("Buyer", "Person")
        .class_under("Owner", "Person")
        .attr("Price", "Vehicle")
        .attr("Weight", "GoodsVehicle")
        .attr("Buyer", "Factory")
        .attr("Owner", "Vehicle")
        .relate("Price", "expressedIn", "PoundSterling")
        .local_rule("factory.Owner => factory.Person")
        .build()
        .expect("factory ontology is well-formed")
}

/// The canonical Fig. 2 articulation rule set, in the paper's textual
/// syntax. `transport` is the articulation ontology's name.
pub fn fig2_rules_text() -> &'static str {
    "\
# --- Fig. 2 articulation: carrier <-> factory via transport -----------
# equivalent roots
carrier.Transportation => factory.Transportation

# cars: carrier.Cars and factory.PassengerCar specialise transport.Vehicle
carrier.Cars => factory.Vehicle
factory.PassengerCar => transport.Vehicle

# trucks are equivalent concepts (via the conjunction of §4.1)
(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks
carrier.Trucks => transport.CargoCarrierVehicle

# cargo carriers
factory.CargoCarrier => transport.CargoCarrier

# the §4.1 disjunction: a factory vehicle is one of carrier's kinds
factory.Vehicle => (carrier.Cars | carrier.Trucks)

# intra-articulation structure (§4.1 Owner => Person example)
transport.Owner => transport.Person
transport.Vehicle => transport.Transportation
transport.CargoCarrier => transport.Transportation

# price normalisation (§4.1 functional rules; Fig. 2 PSToEuroFn/EuroToPSFn)
DGToEuroFn(): carrier.DutchGuilders => transport.Euro
PSToEuroFn(): factory.PoundSterling => transport.Euro
"
}

/// Parses [`fig2_rules_text`] into a rule set.
pub fn fig2_rules() -> onion_rules::RuleSet {
    onion_rules::parse_rules(fig2_rules_text()).expect("canonical rules parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency;

    #[test]
    fn carrier_supports_paper_prose() {
        let c = carrier();
        assert_eq!(c.name(), "carrier");
        // §3 path pattern carrier:car:driver — outgoing edge Cars -> Driver
        assert!(c.graph().has_edge("Cars", "hasDriver", "Driver"));
        // §3 attribute pattern truck(O: owner, model)
        assert_eq!(c.attributes_of("Trucks"), vec!["Model", "Owner", "Price"]);
        // Fig. 2 instance data
        assert_eq!(c.instances_of("Cars"), vec!["MyCar"]);
        assert!(c.graph().has_edge("2000", "AttributeOf", "Price"));
        // SUV under Cars
        assert!(c.is_subclass("SUV", "Transportation"));
        // currency annotation
        assert!(c.graph().has_edge("Price", "expressedIn", "DutchGuilders"));
    }

    #[test]
    fn factory_supports_paper_prose() {
        let f = factory();
        // §4.1 conjunction needs Truck under both Vehicle and CargoCarrier
        assert!(f.is_subclass("Truck", "Vehicle"));
        assert!(f.is_subclass("Truck", "CargoCarrier"));
        // people taxonomy
        assert!(f.is_subclass("Buyer", "Person"));
        assert!(f.is_subclass("Owner", "Person"));
        // price in sterling
        assert!(f.graph().has_edge("Price", "expressedIn", "PoundSterling"));
        // weight on goods vehicles, inherited by trucks
        assert!(f.attributes_inherited("Truck").contains(&"Weight".to_string()));
    }

    #[test]
    fn both_ontologies_are_consistent() {
        assert!(consistency::check(&carrier()).is_empty());
        assert!(consistency::check(&factory()).is_empty());
    }

    #[test]
    fn fig2_rules_parse_and_cover_examples() {
        let rs = fig2_rules();
        assert!(rs.len() >= 10);
        let text = rs.to_string();
        assert!(text.contains("(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks"));
        assert!(text.contains("factory.Vehicle => (carrier.Cars | carrier.Trucks)"));
        assert!(text.contains("DGToEuroFn(): carrier.DutchGuilders => transport.Euro"));
        assert!(text.contains("transport.Owner => transport.Person"));
        // every qualified ontology is one of the three
        assert_eq!(rs.ontologies(), vec!["carrier", "factory", "transport"]);
    }

    #[test]
    fn rule_terms_resolve_in_their_source_ontologies() {
        let c = carrier();
        let f = factory();
        for rule in fig2_rules().iter() {
            for term in rule.terms() {
                match term.ontology.as_deref() {
                    Some("carrier") => {
                        assert!(c.defines(&term.name), "carrier should define {:?}", term.name);
                    }
                    Some("factory") => {
                        assert!(f.defines(&term.name), "factory should define {:?}", term.name);
                    }
                    _ => {} // articulation terms are created by the generator
                }
            }
        }
    }
}
