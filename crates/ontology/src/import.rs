//! Ontology import from the paper's accepted formats.
//!
//! §2.1: "We accept ontologies based on IDL specifications and XML-based
//! documents, as well as simple adjacency list representations." The
//! adjacency-list and XML legs delegate to `onion-graph`; this module
//! adds the IDL leg — a small parser for the CORBA-IDL-flavoured class
//! declarations ONION's era used:
//!
//! ```text
//! // carrier fleet model
//! interface Vehicle {
//!     attribute string owner;
//! };
//! interface Car : Vehicle {
//!     attribute long price;
//! };
//! ```
//!
//! `interface A : B` becomes `A SubclassOf B`; each `attribute T name;`
//! becomes `name AttributeOf A` (the IDL type is recorded as
//! `name hasType T` when `keep_types` is on).

use onion_graph::{text, xml, GraphError};

use crate::ontology::Ontology;
use crate::Result;

/// Imports the adjacency-list text format (see `onion_graph::text`).
pub fn from_text(input: &str) -> Result<Ontology> {
    Ontology::from_graph(text::from_text(input)?)
}

/// Imports the XML format (see `onion_graph::xml`).
pub fn from_xml(input: &str) -> Result<Ontology> {
    Ontology::from_graph(xml::from_xml(input)?)
}

/// Options for IDL import.
#[derive(Debug, Clone)]
pub struct IdlOptions {
    /// Ontology name to use (IDL files don't name themselves).
    pub name: String,
    /// Record `attr hasType T` edges for attribute types.
    pub keep_types: bool,
}

impl Default for IdlOptions {
    fn default() -> Self {
        IdlOptions { name: "idl".into(), keep_types: false }
    }
}

/// Imports an IDL-style interface specification.
pub fn from_idl(input: &str, opts: &IdlOptions) -> Result<Ontology> {
    let mut o = Ontology::new(&opts.name);
    let mut current: Option<String> = None;
    let mut depth = 0usize;

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let line = match line.find("//") {
            Some(i) => line[..i].trim(),
            None => line,
        };
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| GraphError::Parse { line: lineno + 1, msg };

        if let Some(rest) = line.strip_prefix("interface ") {
            if current.is_some() {
                return Err(err("nested interface declarations are not supported".into()));
            }
            // interface NAME [: PARENT [, PARENT]*] [{]
            let rest = rest.trim_end_matches('{').trim();
            let (name, parents) = match rest.split_once(':') {
                Some((n, ps)) => (
                    n.trim().to_string(),
                    ps.split(',').map(|p| p.trim().to_string()).collect::<Vec<_>>(),
                ),
                None => (rest.trim().to_string(), Vec::new()),
            };
            if name.is_empty() || !is_ident(&name) {
                return Err(err(format!("bad interface name {name:?}")));
            }
            o.graph_mut().ensure_node(&name)?;
            for p in &parents {
                if !is_ident(p) {
                    return Err(err(format!("bad parent name {p:?}")));
                }
                o.subclass(&name, p)?;
            }
            current = Some(name);
            if raw.contains('{') {
                depth += 1;
            }
            continue;
        }
        if line == "{" {
            if current.is_none() {
                return Err(err("'{' outside interface".into()));
            }
            depth += 1;
            continue;
        }
        if line == "};" || line == "}" {
            if depth == 0 {
                return Err(err("unmatched '}'".into()));
            }
            depth -= 1;
            if depth == 0 {
                current = None;
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("attribute ") {
            let class = current.clone().ok_or_else(|| err("attribute outside interface".into()))?;
            let rest = rest.trim_end_matches(';').trim();
            // attribute TYPE NAME  (TYPE may be multi-word, NAME is last)
            let mut parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() < 2 {
                return Err(err(format!("attribute needs type and name: {line:?}")));
            }
            let name = parts.pop().expect("len checked").to_string();
            let ty = parts.join(" ");
            if !is_ident(&name) {
                return Err(err(format!("bad attribute name {name:?}")));
            }
            o.attribute(&name, &class)?;
            if opts.keep_types {
                o.relate(&name, "hasType", &ty)?;
            }
            continue;
        }
        return Err(err(format!("unrecognised IDL line: {line:?}")));
    }
    if current.is_some() || depth != 0 {
        return Err(GraphError::Parse {
            line: input.lines().count(),
            msg: "unterminated interface".into(),
        });
    }
    Ok(o)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().map(|c| c.is_alphabetic() || c == '_').unwrap_or(false)
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
// carrier fleet model
interface Vehicle {
    attribute string owner;
};
interface Car : Vehicle {
    attribute long price;
    attribute string model;
};
interface Truck : Vehicle, CargoCarrier {
};
"#;

    #[test]
    fn idl_import_builds_hierarchy() {
        let o =
            from_idl(SAMPLE, &IdlOptions { name: "carrier".into(), keep_types: false }).unwrap();
        assert_eq!(o.name(), "carrier");
        assert!(o.is_subclass("Car", "Vehicle"));
        assert!(o.is_subclass("Truck", "Vehicle"));
        assert!(o.is_subclass("Truck", "CargoCarrier"), "multiple inheritance");
        assert_eq!(o.attributes_of("Car"), vec!["model", "price"]);
        assert_eq!(o.attributes_of("Vehicle"), vec!["owner"]);
    }

    #[test]
    fn idl_keep_types_records_has_type() {
        let o = from_idl(SAMPLE, &IdlOptions { name: "c".into(), keep_types: true }).unwrap();
        assert!(o.graph().has_edge("price", "hasType", "long"));
        assert!(o.graph().has_edge("owner", "hasType", "string"));
    }

    #[test]
    fn idl_multiword_types() {
        let src = "interface A {\n attribute unsigned long long count;\n};";
        let o = from_idl(src, &IdlOptions { name: "x".into(), keep_types: true }).unwrap();
        assert!(o.graph().has_edge("count", "hasType", "unsigned long long"));
    }

    #[test]
    fn idl_errors() {
        for bad in [
            "attribute long x;",                     // outside interface
            "interface A {\n interface B {\n};\n};", // nested
            "interface A {",                         // unterminated
            "};",                                    // stray close
            "interface 9bad {\n};",                  // bad name
            "interface A {\n attribute long;\n};",   // missing name
            "interface A {\n garbage here;\n};",     // unknown line
        ] {
            assert!(from_idl(bad, &IdlOptions::default()).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn text_and_xml_legs_delegate() {
        let o = from_text("ontology z\nedge Car SubclassOf Vehicle\n").unwrap();
        assert_eq!(o.name(), "z");
        assert!(o.is_subclass("Car", "Vehicle"));

        let o = from_xml("<ontology name=\"w\"><edge from=\"Car\" label=\"SubclassOf\" to=\"Vehicle\"/></ontology>").unwrap();
        assert_eq!(o.name(), "w");
        assert!(o.is_subclass("Car", "Vehicle"));
    }

    #[test]
    fn braces_on_own_line() {
        let src = "interface A\n{\n attribute long x;\n}\n";
        let o = from_idl(src, &IdlOptions::default()).unwrap();
        assert_eq!(o.attributes_of("A"), vec!["x"]);
    }
}
