//! Functional rules at work: a cross-currency vehicle marketplace.
//!
//! ```text
//! cargo run --example currency_trade
//! ```
//!
//! The paper's §4.1 motivates functional rules with prices "expressed in
//! terms of Dutch Guilders and Pound Sterling [that] might need to be
//! normalized with respect to, say the Euro". This example builds a
//! little marketplace on exactly that: a Dutch fleet seller, a British
//! manufacturer, a buyer thinking in Euros — and shows condition
//! pushdown converting the buyer's budget into each source's currency.

use onion_core::prelude::*;
use onion_core::OnionSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dutch = OntologyBuilder::new("dutch")
        .class_under("Auto", "Voorraad")
        .attr("Prijs", "Auto")
        .relate("Prijs", "expressedIn", "Gulden")
        .build()?;
    let british = OntologyBuilder::new("british")
        .class_under("Car", "Stock")
        .attr("Price", "Car")
        .relate("Price", "expressedIn", "Pounds")
        .build()?;

    let mut onion = OnionSystem::with_transport_lexicon();
    onion.add_source(dutch);
    onion.add_source(british);
    // the expert writes the whole articulation by hand here: class
    // bridges, attribute bridges, and the two functional rules
    onion.add_rules(
        "dutch.Auto => transport.Car\n\
         british.Car => transport.Car\n\
         dutch.Prijs => transport.Price\n\
         british.Price => transport.Price\n\
         DGToEuroFn(): dutch.Gulden => transport.Euro\n\
         PSToEuroFn(): british.Pounds => transport.Euro\n",
    )?;
    onion.articulate_from_rules("dutch", "british")?;

    let mut dutch_kb = KnowledgeBase::new("dutch");
    dutch_kb.add(Instance::new("opel", "Auto").with("Prijs", Value::Num(11018.55))); // 5000 EUR
    dutch_kb.add(Instance::new("daf", "Auto").with("Prijs", Value::Num(44074.20))); // 20000 EUR
    let mut british_kb = KnowledgeBase::new("british");
    british_kb.add(Instance::new("mini", "Car").with("Price", Value::Num(3266.50))); // 5000 EUR
    british_kb.add(Instance::new("jag", "Car").with("Price", Value::Num(32665.00))); // 50000 EUR
    onion.add_knowledge_base(dutch_kb);
    onion.add_knowledge_base(british_kb);

    let budget_query = "find Car(Price) where Price < 10000";
    println!("buyer's question (Euro): {budget_query}\n");
    println!("{}", onion.explain(budget_query)?);
    let rs = onion.query(budget_query)?;
    println!("{rs}");
    assert_eq!(rs.len(), 2, "opel (5000 EUR) and mini (5000 EUR)");

    // round-trip sanity: 1 EUR worth of guilders -> euro -> guilders
    let conv = ConversionRegistry::standard();
    let eur = conv.apply("DGToEuroFn", 2.20371)?;
    let back = conv.apply_inverse("DGToEuroFn", eur)?;
    println!("fixed rate check: 2.20371 NLG = {eur} EUR = {back} NLG");
    Ok(())
}
