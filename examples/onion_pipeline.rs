//! Experiment E2: the full Fig. 1 architecture, end to end.
//!
//! ```text
//! cargo run --example onion_pipeline
//! ```
//!
//! Drives every box of the paper's architecture diagram in order:
//! wrappers/import (data layer) → SKAT proposals → expert confirmation →
//! articulation generation → inference expansion → algebra → query
//! reformulation and execution → viewer rendering.

use onion_core::prelude::*;
use onion_core::{articulate, viewer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- data layer: one ontology imported per supported format --------
    let carrier = examples::carrier(); // built programmatically
    let factory_xml = onion_core::graph::xml::to_xml(examples::factory().graph());
    let factory = onion_core::ontology::import::from_xml(&factory_xml)?; // via XML
    println!(
        "loaded {} ({} terms) and {} ({} terms)",
        carrier.name(),
        carrier.term_count(),
        factory.name(),
        factory.term_count()
    );

    // --- SKAT proposes, a threshold expert reviews ---------------------
    let pipeline = MatcherPipeline::standard(transport_lexicon());
    let candidates = pipeline.propose(&carrier, &factory, &RuleSet::new());
    println!("\nSKAT proposed {} candidate rules; top five:", candidates.len());
    for c in candidates.iter().take(5) {
        println!("  [{:.2}] {}  ({}: {})", c.confidence, c.rule, c.provenance, c.evidence);
    }

    let mut expert = ThresholdExpert::new(0.8);
    let mut generator = GeneratorConfig::default();
    generator.expand_with_inference = true; // derive transitive bridges
    let config = EngineConfig { generator, ..Default::default() };
    let engine =
        ArticulationEngine::new(MatcherPipeline::standard(transport_lexicon())).with_config(config);
    let seed = parse_rules(
        "DGToEuroFn(): carrier.DutchGuilders => transport.Euro\n\
         PSToEuroFn(): factory.PoundSterling => transport.Euro\n",
    )?;
    let (art, report) = engine.run(&carrier, &factory, &mut expert, seed)?;
    println!(
        "\nengine: {} rounds, {} proposed, {} accepted, {} rejected",
        report.rounds, report.proposed, report.accepted, report.rejected
    );
    let derived = art.bridges.iter().filter(|b| b.kind == articulate::BridgeKind::Derived).count();
    println!("bridges: {} total, {derived} derived by the inference engine", art.bridges.len());

    // --- algebra --------------------------------------------------------
    let unified = art.unified(&[&carrier, &factory])?;
    println!("\nunion: {} nodes / {} edges", unified.node_count(), unified.edge_count());
    println!("intersection: {} articulation terms", art.ontology.term_count());
    let (diff, dreport) = difference(&carrier, &factory, &art)?;
    println!(
        "difference carrier−factory: {} of {} terms independent ({} determined)",
        diff.node_count(),
        carrier.term_count(),
        dreport.determined.len()
    );

    // --- query system ----------------------------------------------------
    let mut carrier_kb = KnowledgeBase::new("carrier");
    carrier_kb.add(Instance::new("MyCar", "Cars").with("Price", Value::Num(2203.71)));
    carrier_kb.add(Instance::new("t1", "Trucks").with("Price", Value::Num(66111.3)));
    let mut factory_kb = KnowledgeBase::new("factory");
    factory_kb.add(Instance::new("t7", "Truck").with("Price", Value::Num(19599.0)));
    let cw = InMemoryWrapper::new(carrier_kb);
    let fw = InMemoryWrapper::new(factory_kb);
    let conversions = ConversionRegistry::standard();
    let q = Query::parse("find Truck(Price)").or_else(|_| Query::parse("find Trucks(Price)"))?;
    let sources: Vec<&Ontology> = vec![&carrier, &factory];
    let wrappers: Vec<&dyn Wrapper> = vec![&cw, &fw];
    let rs = execute(&q, &art, &sources, &conversions, &wrappers)?;
    println!("\nquery `{q}` → {} rows (prices in EUR):\n{rs}", rs.len());

    // --- viewer -----------------------------------------------------------
    println!("{}", viewer::render_articulation(&art));
    Ok(())
}
