//! Quickstart: articulate two ontologies and query across them.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the shortest path through the system: load the paper's Fig. 2
//! ontologies, let the engine propose bridges (auto-accepting expert),
//! then ask one cross-source query with currency normalisation.

use onion_core::prelude::*;
use onion_core::OnionSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. load the Fig. 2 source ontologies
    let mut onion = OnionSystem::with_transport_lexicon();
    onion.add_source(examples::carrier());
    onion.add_source(examples::factory());

    // 2. seed the expert rules from the paper and run the engine
    onion.add_rules(examples::fig2_rules_text())?;
    let report = onion.articulate("carrier", "factory", &mut AcceptAll)?;
    println!(
        "articulation: {} rounds, {} proposed, {} accepted, {} rejected",
        report.rounds, report.proposed, report.accepted, report.rejected
    );
    let art = onion.articulation().expect("articulated");
    let (terms, bridges, rules) = art.stats();
    println!("articulation ontology: {terms} terms, {bridges} bridges, {rules} rules\n");

    // 3. add instance data: carrier prices in Dutch Guilders, factory
    //    prices in Pound Sterling
    let mut carrier_kb = KnowledgeBase::new("carrier");
    carrier_kb.add(
        Instance::new("MyCar", "Cars")
            .with("Price", Value::Num(2203.71)) // = 1000 EUR
            .with("Owner", Value::Str("Mitra".into())),
    );
    carrier_kb.add(Instance::new("suv1", "SUV").with("Price", Value::Num(44074.2))); // 20k EUR
    let mut factory_kb = KnowledgeBase::new("factory");
    factory_kb.add(Instance::new("pc7", "PassengerCar").with("Price", Value::Num(3266.5))); // 5k EUR
    factory_kb.add(Instance::new("truck9", "Truck").with("Price", Value::Num(13066.0))); // 20k EUR
    onion.add_knowledge_base(carrier_kb);
    onion.add_knowledge_base(factory_kb);

    // 4. one query, answered by both sources, prices normalised to Euro
    let question = "find Vehicle(Price, Owner) where Price < 10000";
    println!("query: {question}");
    println!("{}", onion.explain(question)?);
    let results = onion.query(question)?;
    println!("{results}");
    assert_eq!(results.len(), 2, "MyCar (1000 EUR) and pc7 (5000 EUR)");
    Ok(())
}
