//! Experiment E1: regenerate the paper's Fig. 2.
//!
//! ```text
//! cargo run --example fig2_articulation
//! ```
//!
//! Builds the carrier and factory source ontologies, generates the
//! articulation from the canonical Fig. 2 rule set, and prints all three
//! graphs — the reproduction of the paper's only worked figure. The
//! exact node/edge inventory is asserted by `tests/fig2_exact.rs`; this
//! binary renders it for eyes (ASCII here, DOT on request).

use onion_core::prelude::*;
use onion_core::viewer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let carrier = examples::carrier();
    let factory = examples::factory();
    let rules = examples::fig2_rules();

    println!("=== source ontologies (Fig. 2, top) ===\n");
    println!("{}", viewer::render_ontology(&carrier));
    println!("{}", viewer::render_ontology(&factory));

    println!("=== articulation rules (§4.1 examples) ===\n");
    print!("{rules}");
    println!();

    let generator = ArticulationGenerator::new();
    let art = generator.generate(&rules, &[&carrier, &factory])?;
    println!("=== articulation (Fig. 2, centre) ===\n");
    println!("{}", viewer::render_articulation(&art));

    // the unified ontology of §5.1 (Ont5 in Fig. 1) — computed, not stored
    let unified = art.unified(&[&carrier, &factory])?;
    println!(
        "unified ontology: {} nodes, {} edges (computed on demand)",
        unified.node_count(),
        unified.edge_count()
    );

    if std::env::args().any(|a| a == "--dot") {
        println!("\n=== DOT (pipe into `dot -Tsvg`) ===\n");
        println!("{}", onion_core::graph::dot::to_dot(&unified, &Default::default()));
    }
    Ok(())
}
