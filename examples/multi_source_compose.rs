//! Scalable composition (§4.2): adding sources without restructuring.
//!
//! ```text
//! cargo run --example multi_source_compose
//! ```
//!
//! "With the addition of new sources, we do not need to restructure
//! existing ontologies or articulations but can reuse them and create a
//! new articulation with minimal effort." This example composes four
//! sources one at a time and shows that earlier articulations are byte-
//! for-byte unchanged as later ones are added — then contrasts with the
//! global-merge baseline, which must rebuild its entire schema each time.

use onion_core::algebra::compose::{add_source, compose_all};
use onion_core::prelude::*;
use onion_core::testkit::GlobalMerge;

fn source(name: &str, extra: &[(&str, &str)]) -> Ontology {
    let mut b = OntologyBuilder::new(name)
        .class_under("Vehicle", "Root")
        .class_under("Truck", "Vehicle")
        .attr("Price", "Vehicle");
    for (child, parent) in extra {
        b = b.class_under(child, parent);
    }
    b.build().expect("well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s1 = source("fleet", &[("Van", "Vehicle")]);
    let s2 = source("plant", &[("Lorry", "Truck")]);
    let s3 = source("dealer", &[("Car", "Vehicle")]);
    let s4 = source("insurer", &[("Motorcycle", "Vehicle")]);
    let lexicon = transport_lexicon();

    // start with two sources…
    let mut comp = compose_all(&[&s1, &s2], &lexicon, &mut AcceptAll)?;
    println!("step 1: articulated fleet+plant — {} bridges", comp.top().bridges.len());
    let first_step_bridges = comp.steps[0].bridges.clone();

    // …then add the third and fourth incrementally
    for s in [&s3, &s4] {
        let report = add_source(&mut comp, s, &lexicon, &mut AcceptAll)?;
        println!(
            "added {}: {} proposed, {} accepted ({} articulation steps now)",
            s.name(),
            report.proposed,
            report.accepted,
            comp.steps.len()
        );
    }
    assert_eq!(comp.steps[0].bridges, first_step_bridges);
    println!("\nearlier articulations untouched: reuse without restructuring ✓");
    for (i, step) in comp.steps.iter().enumerate() {
        let (terms, bridges, rules) = step.stats();
        println!("  step {}: {} terms, {} bridges, {} rules", i + 1, terms, bridges, rules);
    }

    // the baseline must re-merge everything for each new source
    println!("\nglobal-merge baseline (the §1 strawman):");
    let mut all: Vec<&Ontology> = vec![&s1, &s2];
    for s in [&s3, &s4] {
        all.push(s);
        let gm = GlobalMerge::rebuild(&all, &lexicon);
        println!(
            "  re-merged {} sources from scratch: {} global nodes, {} unifications",
            all.len(),
            gm.graph().node_count(),
            gm.merges()
        );
    }
    println!("\n(B7 in the bench suite measures this contrast quantitatively)");
    Ok(())
}
