//! Observability tour: turn on `onion-obs` recording, drive the
//! instrumented layers (publish, WAL, checkpoint, inference, query
//! batches), and dump the metrics in both export formats.
//!
//! ```text
//! cargo run --example observability
//! ```
//!
//! Recording is off by default — every instrumented hot path pays one
//! relaxed atomic load and nothing else. This example flips it on via
//! [`OnionSystem::set_observability`], runs a small end-to-end session,
//! and prints the Prometheus text export plus the JSON snapshot. It
//! asserts that the headline series (publish spans, WAL flush spans,
//! inference rounds, query-batch spans) all carry nonzero samples, and
//! that the Prometheus rendering passes the format lint.

use onion_core::obs;
use onion_core::prelude::*;
use onion_core::OnionSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("onion_obs_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut onion = OnionSystem::with_transport_lexicon();
    onion.set_observability(true);
    onion.add_source(examples::carrier());
    onion.add_source(examples::factory());

    // --- durability: bootstrap logs + flushes + checkpoints the source --
    let opened = onion.open_durable("carrier", &dir)?;
    println!("durable open: recovered = {}", opened.recovered);

    // --- edit + publish rounds: journal → WAL group flush → snapshot ----
    for i in 0..3 {
        let g = onion.source_mut("carrier").expect("loaded").graph_mut();
        onion_core::graph::ops::apply_all(g, &[GraphOp::node_add(&format!("ObsDemo{i}"))])?;
        let (_snap, stats) = onion.publish_source("carrier")?;
        println!("publish round {i}: rebuilt {} / reused {}", stats.rebuilt, stats.reused);
    }
    let ckpt = onion.checkpoint_source("carrier")?;
    println!("checkpoint: wrote {} shards, reused {}", ckpt.shards_written, ckpt.shards_reused);

    // --- articulation with inference expansion (drives round metrics) ---
    let mut generator = GeneratorConfig::default();
    generator.expand_with_inference = true;
    onion.set_engine_config(EngineConfig { generator, ..Default::default() });
    onion.add_rules(examples::fig2_rules_text())?;
    let report = onion.articulate("carrier", "factory", &mut AcceptAll)?;
    println!("articulate: {} accepted over {} rounds", report.accepted, report.rounds);

    // --- a parallel query batch over small knowledge bases --------------
    let mut carrier_kb = KnowledgeBase::new("carrier");
    carrier_kb.add(Instance::new("MyCar", "Cars").with("Price", Value::Num(2203.71)));
    carrier_kb.add(Instance::new("t1", "Trucks").with("Price", Value::Num(66111.3)));
    let mut factory_kb = KnowledgeBase::new("factory");
    factory_kb.add(Instance::new("t7", "Truck").with("Price", Value::Num(19599.0)));
    onion.add_knowledge_base(carrier_kb);
    onion.add_knowledge_base(factory_kb);
    let exec = Executor::new(2);
    let results = onion.query_batch(&exec, &["find Truck(Price)", "find Vehicle(Price)"]);
    for (text, r) in ["find Truck(Price)", "find Vehicle(Price)"].iter().zip(&results) {
        match r {
            Ok(rs) => println!("query `{text}` → {} rows", rs.len()),
            Err(e) => println!("query `{text}` → error: {e}"),
        }
    }

    // --- reopen the durable dir: recovery emits a structured event ------
    drop(onion);
    let mut reopened = OnionSystem::with_transport_lexicon();
    let second = reopened.open_durable("carrier", &dir)?;
    println!("durable reopen: recovered = {}", second.recovered);

    // --- dump both export formats ---------------------------------------
    let snap = reopened.metrics_snapshot();
    let prom = snap.to_prometheus();
    println!("\n=== Prometheus text format ===\n{prom}");
    println!("=== JSON snapshot ===\n{}", snap.to_json());

    // the headline series must all have recorded real samples
    obs::lint_prometheus(&prom).map_err(|e| format!("prometheus lint: {e}"))?;
    let hist_count = |name: &str| snap.histogram(name).map(|h| h.count).unwrap_or(0);
    assert!(hist_count("onion_span_publish_us") > 0, "publish spans recorded");
    assert!(hist_count("onion_span_wal_flush_us") > 0, "WAL flush spans recorded");
    assert!(snap.counter("onion_inference_rounds_total").unwrap_or(0) > 0, "inference rounds");
    assert!(hist_count("onion_span_query_batch_us") > 0, "query-batch spans recorded");

    // recovery / torn-tail trace events land in the bounded ring
    let events = obs::trace_events();
    assert!(events.iter().any(|e| e.name == "recovery"), "recovery event traced");
    for e in &events {
        println!("trace event #{}: {} {:?}", e.seq, e.name, e.fields);
    }

    std::fs::remove_dir_all(&dir)?;
    println!("\nall headline series carry samples; prometheus lint passed.");
    Ok(())
}
