//! # onion — workspace facade
//!
//! Thin re-export of [`onion_core`], so the integration tests under
//! `tests/` and the walkthroughs under `examples/` depend on a single
//! crate. See `README.md` for the crate map and `ARCHITECTURE.md` for
//! the per-crate design notes.

pub use onion_core::*;
